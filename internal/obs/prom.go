package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// FamilyType is the Prometheus metric type of a Family.
type FamilyType string

// Supported family types.
const (
	TypeCounter   FamilyType = "counter"
	TypeGauge     FamilyType = "gauge"
	TypeHistogram FamilyType = "histogram"
)

// Label is one key="value" pair of a sample.
type Label struct {
	Key   string
	Value string
}

// Sample is one time series of a counter or gauge family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one named metric in a snapshot: a counter or gauge with one or
// more labeled samples, or a histogram. It is the unit WriteProm encodes.
type Family struct {
	Name    string
	Help    string
	Type    FamilyType
	Samples []Sample           // counter and gauge families
	Hist    *HistogramSnapshot // histogram families
}

// CounterFamily builds a single-sample counter family.
func CounterFamily(name, help string, value int64) Family {
	return Family{Name: name, Help: help, Type: TypeCounter,
		Samples: []Sample{{Value: float64(value)}}}
}

// GaugeFamily builds a single-sample gauge family.
func GaugeFamily(name, help string, value float64) Family {
	return Family{Name: name, Help: help, Type: TypeGauge,
		Samples: []Sample{{Value: value}}}
}

// HistogramFamily builds a histogram family from a snapshot.
func HistogramFamily(name, help string, s HistogramSnapshot) Family {
	return Family{Name: name, Help: help, Type: TypeHistogram, Hist: &s}
}

// WriteProm encodes the families in the Prometheus text exposition format
// (version 0.0.4): per family a # HELP and # TYPE line followed by its
// samples; histograms expand to cumulative _bucket series plus _sum and
// _count.
func WriteProm(w io.Writer, families []Family) error {
	for _, f := range families {
		if f.Name == "" {
			return fmt.Errorf("obs: family with empty name")
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		if f.Type == TypeHistogram {
			if f.Hist == nil {
				return fmt.Errorf("obs: histogram family %s without snapshot", f.Name)
			}
			if err := writeHist(w, f.Name, *f.Hist); err != nil {
				return err
			}
			continue
		}
		for _, s := range f.Samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.Name, formatLabels(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, s HistogramSnapshot) error {
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.Le, 1) {
			le = formatValue(b.Le)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(s.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
