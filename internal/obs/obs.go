// Package obs provides the lock-cheap observability primitives used by the
// DC-tree: monotone counters, gauges and log2-bucketed latency histograms,
// all updated with single atomic operations so they can sit on the index's
// hot paths (insert, delete, range-query descent) without measurable
// overhead, plus a Prometheus-text encoder for exporting snapshots.
//
// The primitives are usable at their zero value and safe for concurrent
// use. Snapshots are taken field by field, not under a global lock, so a
// snapshot racing with updates may be torn by a few events — fine for
// monitoring, where the counters are only ever read as trends.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic value that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of finite histogram buckets: bucket i holds
// observations with d ≤ 2^i microseconds, so the finite range spans 1 µs to
// 2^27 µs ≈ 134 s; slower observations land in the +Inf overflow bucket.
const histBuckets = 28

// Histogram is a latency histogram with power-of-two bucket bounds.
// Observe is two atomic adds plus one atomic increment — no locks, no
// allocation — so it can time every operation of a hot path.
type Histogram struct {
	count   atomic.Int64
	sumNano atomic.Int64
	buckets [histBuckets + 1]atomic.Int64 // last bucket is +Inf
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNano.Add(int64(d))
	idx := bits.Len64(uint64(d / time.Microsecond))
	if idx > histBuckets {
		idx = histBuckets // +Inf bucket
	}
	h.buckets[idx].Add(1)
}

// Bucket is one cumulative histogram bucket of a snapshot: Count
// observations were ≤ Le seconds (Le is +Inf for the final bucket).
type Bucket struct {
	Le    float64
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a Histogram in the
// cumulative-bucket form Prometheus expects.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets []Bucket
}

// Snapshot copies the histogram. Trailing empty buckets (beyond the largest
// observation) are trimmed; the +Inf bucket is always present.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sumNano.Load()),
	}
	var raw [histBuckets + 1]int64
	last := 0
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 && i < histBuckets {
			last = i + 1
		}
	}
	cum := int64(0)
	for i := 0; i <= last; i++ {
		cum += raw[i]
		// Bucket i's upper bound is 2^i µs, i.e. 2^i * 1e-6 s.
		s.Buckets = append(s.Buckets, Bucket{Le: math.Ldexp(1e-6, i), Count: cum})
	}
	for i := last + 1; i <= histBuckets; i++ {
		cum += raw[i]
	}
	s.Buckets = append(s.Buckets, Bucket{Le: math.Inf(1), Count: cum})
	return s
}

// Quantile estimates the q-th latency quantile (0 ≤ q ≤ 1) from the bucket
// counts, attributing each bucket's mass to its upper bound — a
// conservative (over-)estimate, like Prometheus's histogram_quantile over
// coarse buckets. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	for _, b := range s.Buckets {
		if b.Count >= rank {
			if math.IsInf(b.Le, 1) {
				break
			}
			return time.Duration(b.Le * float64(time.Second))
		}
	}
	// Everything above the finite range: report the largest finite bound.
	if len(s.Buckets) >= 2 {
		return time.Duration(s.Buckets[len(s.Buckets)-2].Le * float64(time.Second))
	}
	return s.Sum
}

// Mean returns the average observed duration (0 for an empty histogram).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
