package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d", c.Load())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Sub-microsecond observations land in the first bucket (le 1µs).
	h.Observe(500 * time.Nanosecond)
	// 1µs ≤ d < 2µs lands in bucket le 2µs.
	h.Observe(1 * time.Microsecond)
	// 3µs lands in bucket le 4µs.
	h.Observe(3 * time.Microsecond)
	// Far beyond the finite range: overflow (+Inf).
	h.Observe(10 * time.Minute)
	// Negative durations clamp to zero instead of corrupting a bucket.
	h.Observe(-time.Second)

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	wantSum := 500*time.Nanosecond + time.Microsecond + 3*time.Microsecond + 10*time.Minute
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	at := func(le float64) int64 {
		for _, b := range s.Buckets {
			if b.Le == le {
				return b.Count
			}
		}
		t.Fatalf("no bucket le=%g in %+v", le, s.Buckets)
		return 0
	}
	if got := at(1e-6); got != 2 { // two zero-ish + the clamp
		t.Fatalf("le=1µs cumulative = %d", got)
	}
	if got := at(2e-6); got != 3 {
		t.Fatalf("le=2µs cumulative = %d", got)
	}
	if got := at(4e-6); got != 4 {
		t.Fatalf("le=4µs cumulative = %d", got)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.Le, 1) || last.Count != 5 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("non-monotone buckets: %+v", s.Buckets)
		}
	}
}

func TestHistogramQuantileMean(t *testing.T) {
	var h Histogram
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	s := h.Snapshot()
	// p50 must land at the 10µs observations' bucket bound (16µs).
	if q := s.Quantile(0.5); q != 16*time.Microsecond {
		t.Fatalf("p50 = %v", q)
	}
	// p99 must land at the 5ms observations' bucket bound (8.192ms).
	if q := s.Quantile(0.99); q != 8192*time.Microsecond {
		t.Fatalf("p99 = %v", q)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[len(s.Buckets)-1].Count != workers*per {
		t.Fatalf("+Inf cumulative = %d", s.Buckets[len(s.Buckets)-1].Count)
	}
}

func TestWriteProm(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)

	fams := []Family{
		CounterFamily("dctree_inserts_total", "Records inserted.", 7),
		GaugeFamily("dctree_hit_ratio", "Hit ratio.", 0.25),
		{
			Name: "dctree_splits_total", Help: "Splits by kind.", Type: TypeCounter,
			Samples: []Sample{
				{Labels: []Label{{Key: "kind", Value: "hierarchy"}}, Value: 3},
				{Labels: []Label{{Key: "kind", Value: "forced"}}, Value: 1},
			},
		},
		HistogramFamily("dctree_query_duration_seconds", "Query latency.", h.Snapshot()),
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, fams); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dctree_inserts_total Records inserted.\n",
		"# TYPE dctree_inserts_total counter\n",
		"dctree_inserts_total 7\n",
		"dctree_hit_ratio 0.25\n",
		`dctree_splits_total{kind="hierarchy"} 3` + "\n",
		`dctree_splits_total{kind="forced"} 1` + "\n",
		"# TYPE dctree_query_duration_seconds histogram\n",
		`dctree_query_duration_seconds_bucket{le="4e-06"} 1` + "\n",
		`dctree_query_duration_seconds_bucket{le="+Inf"} 1` + "\n",
		"dctree_query_duration_seconds_sum 3e-06\n",
		"dctree_query_duration_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := WriteProm(&buf, []Family{{}}); err == nil {
		t.Fatal("empty family name accepted")
	}
	if err := WriteProm(&buf, []Family{{Name: "x", Type: TypeHistogram}}); err == nil {
		t.Fatal("histogram without snapshot accepted")
	}
}
