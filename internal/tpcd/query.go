package tpcd

import (
	"fmt"
	"math/rand"

	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/xtree"
)

// Query is one generated range query in both representations: the
// range_mds the DC-tree and the sequential scan evaluate directly, and the
// equivalent (range_mbr, exact filter) pair for the X-tree (§5.2).
//
// The MBR over-approximates each chosen value set by its [min,max] code
// range under the total ordering; Filter re-checks exact membership per
// point so that all three systems return identical aggregates.
type Query struct {
	MDS    mds.MDS
	Rect   xtree.Rect
	Filter func(xtree.Point) bool
}

// QueryGen draws random range queries of a fixed selectivity, using its
// own random stream so workloads are reproducible independently of record
// generation.
type QueryGen struct {
	g   *Gen
	rng *rand.Rand
}

// Queries returns a query generator over g's cube.
func (g *Gen) Queries(seed int64) *QueryGen {
	return &QueryGen{g: g, rng: rand.New(rand.NewSource(seed))}
}

// Query draws one range query: per dimension a random hierarchy level, and
// a random subset of that level's values containing up to selectivity of
// all attribute values of the chosen level (the paper's generator, §5.2:
// "a selectivity of 25% involves a range that contains up to 25% of all
// attribute values of the chosen level in each dimension").
func (q *QueryGen) Query(selectivity float64) (Query, error) {
	if selectivity <= 0 || selectivity > 1 {
		return Query{}, fmt.Errorf("tpcd: selectivity %g outside (0,1]", selectivity)
	}
	space := q.g.schema.Space()
	rangeMDS := make(mds.MDS, len(space))
	for d, h := range space {
		level := q.rng.Intn(h.Depth())
		vals, err := h.ValuesAt(level)
		if err != nil {
			return Query{}, err
		}
		k := int(selectivity * float64(len(vals)))
		if k < 1 {
			k = 1
		}
		if k > len(vals) {
			k = len(vals)
		}
		perm := q.rng.Perm(len(vals))[:k]
		ids := make([]hierarchy.ID, k)
		for i, p := range perm {
			ids[i] = vals[p]
		}
		hierarchy.SortIDs(ids)
		rangeMDS[d] = mds.DimSet{Level: level, IDs: ids}
	}
	rect, filter, err := q.g.ToXQuery(rangeMDS)
	if err != nil {
		return Query{}, err
	}
	return Query{MDS: rangeMDS, Rect: rect, Filter: filter}, nil
}

// Rollup draws an OLAP-style roll-up query: only dims randomly chosen
// dimensions are constrained, each at one of its two coarsest named
// levels with a small value set; the remaining dimensions stay ALL.
// This is the workload of the paper's motivating scenarios (revenue by
// region, by region × year, ...), where the DC-tree answers most of the
// range from materialized directory aggregates.
func (q *QueryGen) Rollup(dims int) (Query, error) {
	space := q.g.schema.Space()
	if dims < 1 || dims > len(space) {
		return Query{}, fmt.Errorf("tpcd: rollup dims %d outside [1,%d]", dims, len(space))
	}
	rangeMDS := make(mds.MDS, len(space))
	for d := range rangeMDS {
		rangeMDS[d] = mds.AllDim()
	}
	perm := q.rng.Perm(len(space))[:dims]
	for _, d := range perm {
		h := space[d]
		level := h.TopLevel() - q.rng.Intn(2)
		if level < 0 {
			level = 0
		}
		vals, err := h.ValuesAt(level)
		if err != nil {
			return Query{}, err
		}
		k := 1 + q.rng.Intn(2)
		if k > len(vals) {
			k = len(vals)
		}
		idx := q.rng.Perm(len(vals))[:k]
		ids := make([]hierarchy.ID, k)
		for i, p := range idx {
			ids[i] = vals[p]
		}
		hierarchy.SortIDs(ids)
		rangeMDS[d] = mds.DimSet{Level: level, IDs: ids}
	}
	rect, filter, err := q.g.ToXQuery(rangeMDS)
	if err != nil {
		return Query{}, err
	}
	return Query{MDS: rangeMDS, Rect: rect, Filter: filter}, nil
}

// ToXQuery converts a range_mds into the X-tree's range_mbr plus an exact
// membership filter. Constrained attribute dimensions get the [min,max]
// code range of the chosen IDs; the other attribute levels of each cube
// dimension stay unconstrained (full code range).
func (g *Gen) ToXQuery(rangeMDS mds.MDS) (xtree.Rect, func(xtree.Point) bool, error) {
	if len(rangeMDS) != g.schema.Dims() {
		return xtree.Rect{}, nil, fmt.Errorf("tpcd: range mds has %d dims, cube has %d",
			len(rangeMDS), g.schema.Dims())
	}
	space := g.schema.Space()
	lo := make([]uint32, len(g.xdims))
	hi := make([]uint32, len(g.xdims))
	type constraint struct {
		xidx int
		set  map[uint32]struct{}
	}
	var constraints []constraint

	for i, xd := range g.xdims {
		ds := rangeMDS[xd.dim]
		if ds.Level == hierarchy.LevelALL || ds.Level != xd.level {
			// Unconstrained attribute level: full code range.
			count, err := space[xd.dim].CountAt(xd.level)
			if err != nil {
				return xtree.Rect{}, nil, err
			}
			lo[i] = 0
			if count > 0 {
				hi[i] = uint32(count - 1)
			}
			continue
		}
		set := make(map[uint32]struct{}, len(ds.IDs))
		min, max := uint32(hierarchy.MaxCode), uint32(0)
		for _, id := range ds.IDs {
			c := id.Code()
			set[c] = struct{}{}
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		lo[i], hi[i] = min, max
		constraints = append(constraints, constraint{xidx: i, set: set})
	}
	filter := func(p xtree.Point) bool {
		for _, c := range constraints {
			if _, ok := c.set[p[c.xidx]]; !ok {
				return false
			}
		}
		return true
	}
	return xtree.Rect{Lo: lo, Hi: hi}, filter, nil
}
