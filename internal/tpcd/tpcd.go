// Package tpcd generates the evaluation workload of the DC-tree paper: a
// data cube derived from the TPC Benchmark D database (§5.1, Figures 8/9).
//
// The original experiments load a flat file produced by SQL selects over
// TPC-D data. This reproduction substitutes a deterministic synthetic
// generator with the paper's exact simplified schema — four dimensions
// (Customer, Supplier, Part, Time) whose hierarchy schemata and
// cardinality ratios follow TPC-D, plus the measure Extended Price — which
// exercises the identical code paths (see DESIGN.md, Substitutions).
//
// The package also implements the paper's range-query generator (§5.2):
// a random hierarchy level per dimension, a random value subset bounded by
// the selectivity, and the conversion of the resulting range_mds into a
// range_mbr over the 13 totally ordered attribute dimensions of the X-tree
// baseline (Fig. 10).
package tpcd

import (
	"fmt"
	"math/rand"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/xtree"
)

// Scale fixes the dimension cardinalities. The paper's data sets range
// from 100,000 to 300,000 records over TPC-D's fixed dimension tables;
// DefaultScale mirrors the TPC-D ratios at a laptop-friendly size.
type Scale struct {
	Regions           int
	NationsPerRegion  int
	SegmentsPerNation int
	Customers         int
	Suppliers         int
	Brands            int
	TypesPerBrand     int
	Parts             int
	Years             int
	DaysPerMonth      int
}

// DefaultScale matches TPC-D's shape: 5 regions, 25 nations, 5 market
// segments, 25 brands, 150 part types, 7 years of dates (1992–1998).
func DefaultScale() Scale {
	return Scale{
		Regions:           5,
		NationsPerRegion:  5,
		SegmentsPerNation: 5,
		Customers:         3000,
		Suppliers:         200,
		Brands:            25,
		TypesPerBrand:     6,
		Parts:             4000,
		Years:             7,
		DaysPerMonth:      30,
	}
}

// ScaleFor sizes the dimension tables for a LINEITEM count the way TPC-D's
// scale factor does: customers, suppliers and parts grow with the fact
// table (TPC-D SF=1 has 6M lineitems over 150k customers, 10k suppliers,
// 200k parts), while regions, nations, segments, brands, types and the
// calendar stay fixed.
func ScaleFor(records int) Scale {
	s := DefaultScale()
	s.Customers = clamp(records/40, 1000, 150000)
	s.Suppliers = clamp(records/600, 100, 10000)
	s.Parts = clamp(records/30, 1500, 200000)
	return s
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Dimension indexes of the cube (Fig. 9).
const (
	DimCustomer = 0
	DimSupplier = 1
	DimPart     = 2
	DimTime     = 3
)

// Gen is a deterministic workload generator for one cube instance.
type Gen struct {
	schema *cube.Schema
	scale  Scale
	rng    *rand.Rand

	custLeaves []hierarchy.ID
	suppLeaves []hierarchy.ID
	partLeaves []hierarchy.ID
	timeLeaves []hierarchy.ID

	xdims []xdim // X-tree attribute dimensions in Fig. 10 order
}

// xdim identifies one X-tree dimension: a (cube dimension, hierarchy
// level) pair, ordered top level first within each cube dimension.
type xdim struct {
	dim   int
	level int
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
var segmentNames = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

// New builds a generator: it registers every dimension value of the scale
// in fresh concept hierarchies (the dimension tables of Fig. 8) and leaves
// the fact records to Record/Records.
func New(seed int64, scale Scale) (*Gen, error) {
	if scale.Regions < 1 || scale.NationsPerRegion < 1 || scale.SegmentsPerNation < 1 ||
		scale.Customers < 1 || scale.Suppliers < 1 || scale.Brands < 1 ||
		scale.TypesPerBrand < 1 || scale.Parts < 1 || scale.Years < 1 || scale.DaysPerMonth < 1 {
		return nil, fmt.Errorf("tpcd: every scale component must be positive: %+v", scale)
	}
	cust := hierarchy.MustNew("Customer", "Customer", "MktSegment", "Nation", "Region")
	supp := hierarchy.MustNew("Supplier", "Supplier", "Nation", "Region")
	part := hierarchy.MustNew("Part", "Part", "Type", "Brand")
	tim := hierarchy.MustNew("Time", "Day", "Month", "Year")
	schema := cube.MustNewSchema(
		[]*hierarchy.Hierarchy{cust, supp, part, tim}, "ExtendedPrice")

	g := &Gen{
		schema: schema,
		scale:  scale,
		rng:    rand.New(rand.NewSource(seed)),
	}
	g.xdims = []xdim{
		{DimCustomer, 3}, {DimCustomer, 2}, {DimCustomer, 1}, {DimCustomer, 0},
		{DimSupplier, 2}, {DimSupplier, 1}, {DimSupplier, 0},
		{DimPart, 2}, {DimPart, 1}, {DimPart, 0},
		{DimTime, 2}, {DimTime, 1}, {DimTime, 0},
	}
	if err := g.populate(); err != nil {
		return nil, err
	}
	return g, nil
}

// populate registers the dimension tables.
func (g *Gen) populate() error {
	s := g.scale
	region := func(i int) string {
		if i < len(regionNames) {
			return regionNames[i]
		}
		return fmt.Sprintf("REGION#%d", i)
	}
	segment := func(i int) string {
		if i < len(segmentNames) {
			return segmentNames[i]
		}
		return fmt.Sprintf("SEGMENT#%d", i)
	}
	nationOf := func(i int) (string, string) { // nation name, region name
		return fmt.Sprintf("NATION#%02d", i), region(i % s.Regions)
	}
	nations := s.Regions * s.NationsPerRegion

	cust, _ := g.schema.Dim(DimCustomer)
	for c := 0; c < s.Customers; c++ {
		nat, reg := nationOf(g.rng.Intn(nations))
		seg := segment(g.rng.Intn(s.SegmentsPerNation))
		leaf, err := cust.Register(reg, nat, seg, fmt.Sprintf("Customer#%06d", c))
		if err != nil {
			return err
		}
		g.custLeaves = append(g.custLeaves, leaf)
	}
	supp, _ := g.schema.Dim(DimSupplier)
	for sidx := 0; sidx < s.Suppliers; sidx++ {
		nat, reg := nationOf(g.rng.Intn(nations))
		leaf, err := supp.Register(reg, nat, fmt.Sprintf("Supplier#%04d", sidx))
		if err != nil {
			return err
		}
		g.suppLeaves = append(g.suppLeaves, leaf)
	}
	part, _ := g.schema.Dim(DimPart)
	for p := 0; p < s.Parts; p++ {
		brand := fmt.Sprintf("Brand#%02d", g.rng.Intn(s.Brands))
		ptype := fmt.Sprintf("TYPE %d", g.rng.Intn(s.TypesPerBrand))
		leaf, err := part.Register(brand, ptype, fmt.Sprintf("Part#%06d", p))
		if err != nil {
			return err
		}
		g.partLeaves = append(g.partLeaves, leaf)
	}
	tim, _ := g.schema.Dim(DimTime)
	for y := 0; y < s.Years; y++ {
		for m := 0; m < 12; m++ {
			for d := 0; d < s.DaysPerMonth; d++ {
				leaf, err := tim.Register(
					fmt.Sprintf("%d", 1992+y),
					fmt.Sprintf("%d-%02d", 1992+y, m+1),
					fmt.Sprintf("%d-%02d-%02d", 1992+y, m+1, d+1))
				if err != nil {
					return err
				}
				g.timeLeaves = append(g.timeLeaves, leaf)
			}
		}
	}
	return nil
}

// Schema returns the cube schema (four dimensions, one measure).
func (g *Gen) Schema() *cube.Schema { return g.schema }

// Scale returns the generator's scale.
func (g *Gen) Scale() Scale { return g.scale }

// XDims returns the number of X-tree attribute dimensions (13, Fig. 10).
func (g *Gen) XDims() int { return len(g.xdims) }

// Record draws one LINEITEM-like fact record: uniform foreign keys into
// the dimension tables and an Extended Price shaped like TPC-D's
// quantity × part price.
func (g *Gen) Record() cube.Record {
	qty := 1 + g.rng.Intn(50)
	price := 900 + float64(g.rng.Intn(120001))/100 // 900.00 .. 2100.00
	return cube.Record{
		Coords: []hierarchy.ID{
			g.custLeaves[g.rng.Intn(len(g.custLeaves))],
			g.suppLeaves[g.rng.Intn(len(g.suppLeaves))],
			g.partLeaves[g.rng.Intn(len(g.partLeaves))],
			g.timeLeaves[g.rng.Intn(len(g.timeLeaves))],
		},
		Measures: []float64{float64(qty) * price},
	}
}

// Records draws n fact records.
func (g *Gen) Records(n int) []cube.Record {
	out := make([]cube.Record, n)
	for i := range out {
		out[i] = g.Record()
	}
	return out
}

// XPoint maps a record to its X-tree point: the ID codes of the record's
// ancestors at every attribute level, in Fig. 10 order. The codes are the
// artificial total ordering assigned by the insert procedure (§3.1).
func (g *Gen) XPoint(rec cube.Record) (xtree.Point, error) {
	p := make(xtree.Point, len(g.xdims))
	space := g.schema.Space()
	for i, xd := range g.xdims {
		anc, err := space[xd.dim].AncestorAt(rec.Coords[xd.dim], xd.level)
		if err != nil {
			return nil, err
		}
		p[i] = anc.Code()
	}
	return p, nil
}
