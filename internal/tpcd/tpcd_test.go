package tpcd

import (
	"math"
	"testing"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/seqscan"
	"github.com/dcindex/dctree/internal/storage"
	"github.com/dcindex/dctree/internal/xtree"
)

func smallScale() Scale {
	return Scale{
		Regions:           5,
		NationsPerRegion:  5,
		SegmentsPerNation: 5,
		Customers:         400,
		Suppliers:         60,
		Brands:            10,
		TypesPerBrand:     4,
		Parts:             500,
		Years:             3,
		DaysPerMonth:      10,
	}
}

func TestGeneratorShape(t *testing.T) {
	g, err := New(1, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	s := g.Schema()
	if s.Dims() != 4 || s.Measures() != 1 {
		t.Fatalf("schema shape %d/%d", s.Dims(), s.Measures())
	}
	if g.XDims() != 13 {
		t.Fatalf("XDims = %d, want 13 (Fig. 10)", g.XDims())
	}
	// Dimension cardinalities follow the scale.
	cust, _ := s.Dim(DimCustomer)
	if n, _ := cust.CountAt(0); n != 400 {
		t.Fatalf("customers = %d", n)
	}
	if n, _ := cust.CountAt(2); n > 25 {
		t.Fatalf("nations = %d, want ≤ 25", n)
	}
	if n, _ := cust.CountAt(3); n > 5 {
		t.Fatalf("regions = %d, want ≤ 5", n)
	}
	tim, _ := s.Dim(DimTime)
	if n, _ := tim.CountAt(0); n != 3*12*10 {
		t.Fatalf("days = %d", n)
	}
	if n, _ := tim.CountAt(2); n != 3 {
		t.Fatalf("years = %d", n)
	}
	for d := 0; d < 4; d++ {
		h, _ := s.Dim(d)
		if err := h.Validate(); err != nil {
			t.Fatalf("dim %d: %v", d, err)
		}
	}
	// Records validate and have TPC-D-like prices.
	for _, r := range g.Records(200) {
		if err := s.ValidateRecord(r); err != nil {
			t.Fatalf("record: %v", err)
		}
		p := r.Measures[0]
		if p < 900 || p > 50*2100 {
			t.Fatalf("price %g outside TPC-D envelope", p)
		}
	}
	// Determinism: same seed, same stream.
	g2, _ := New(1, smallScale())
	a, b := g.Records(5), g2.Records(5)
	// g drew 200 records above; redraw from fresh generators instead.
	g3, _ := New(99, smallScale())
	g4, _ := New(99, smallScale())
	a, b = g3.Records(5), g4.Records(5)
	for i := range a {
		for d := range a[i].Coords {
			if a[i].Coords[d] != b[i].Coords[d] {
				t.Fatalf("generator not deterministic at record %d dim %d", i, d)
			}
		}
		if a[i].Measures[0] != b[i].Measures[0] {
			t.Fatalf("measures differ at %d", i)
		}
	}
	if _, err := New(1, Scale{}); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestXPointMapping(t *testing.T) {
	g, err := New(2, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	space := g.Schema().Space()
	for _, r := range g.Records(100) {
		p, err := g.XPoint(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != 13 {
			t.Fatalf("point dims = %d", len(p))
		}
		// Spot-check: customer leaf code is dim 3 of the point, customer
		// region code is dim 0.
		if p[3] != r.Coords[DimCustomer].Code() {
			t.Fatalf("custkey code mismatch")
		}
		reg, _ := space[DimCustomer].AncestorAt(r.Coords[DimCustomer], 3)
		if p[0] != reg.Code() {
			t.Fatalf("region code mismatch")
		}
	}
}

func TestQueryGeneratorSelectivity(t *testing.T) {
	g, err := New(3, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	qg := g.Queries(7)
	space := g.Schema().Space()
	for i := 0; i < 100; i++ {
		q, err := qg.Query(0.25)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.MDS.Validate(space); err != nil {
			t.Fatalf("query MDS invalid: %v", err)
		}
		for d, ds := range q.MDS {
			total, _ := space[d].CountAt(ds.Level)
			bound := int(0.25 * float64(total))
			if bound < 1 {
				bound = 1
			}
			if len(ds.IDs) > bound {
				t.Fatalf("dim %d: %d values exceeds 25%% of %d", d, len(ds.IDs), total)
			}
		}
		if err := q.Rect.Validate(13); err != nil {
			t.Fatalf("query rect invalid: %v", err)
		}
	}
	if _, err := qg.Query(0); err == nil {
		t.Fatal("selectivity 0 accepted")
	}
	if _, err := qg.Query(1.5); err == nil {
		t.Fatal("selectivity > 1 accepted")
	}
}

// TestThreeSystemsAgree is the repo's strongest oracle: the DC-tree, the
// X-tree (via range_mbr + exact filter) and the sequential scan must
// return identical aggregates for every generated query.
func TestThreeSystemsAgree(t *testing.T) {
	g, err := New(5, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(3000)

	// DC-tree.
	cfg := core.DefaultConfig()
	cfg.BlockSize = 1024
	cfg.DirCapacity = 8
	cfg.LeafCapacity = 12
	dc, err := core.New(storage.NewMemStore(cfg.BlockSize), g.Schema(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// X-tree.
	xcfg := xtree.DefaultConfig()
	xcfg.DirCapacity = 8
	xcfg.LeafCapacity = 12
	xt, err := xtree.New(g.XDims(), xcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential scan.
	scan := seqscan.New(g.Schema())

	for _, r := range recs {
		if err := dc.Insert(r); err != nil {
			t.Fatal(err)
		}
		p, err := g.XPoint(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := xt.Insert(p, r.Measures[0]); err != nil {
			t.Fatal(err)
		}
		if err := scan.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.Validate(); err != nil {
		t.Fatalf("dc validate: %v", err)
	}
	if err := xt.Validate(); err != nil {
		t.Fatalf("xtree validate: %v", err)
	}

	qg := g.Queries(11)
	for i := 0; i < 200; i++ {
		sel := []float64{0.01, 0.05, 0.25}[i%3]
		q, err := qg.Query(sel)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scan.RangeAgg(q.MDS, 0)
		if err != nil {
			t.Fatal(err)
		}
		gotDC, err := dc.RangeAgg(q.MDS, 0)
		if err != nil {
			t.Fatal(err)
		}
		gotX, _, err := xt.RangeQuery(q.Rect, q.Filter)
		if err != nil {
			t.Fatal(err)
		}
		if gotDC.Count != want.Count || !closeEnough(gotDC.Sum, want.Sum) ||
			(want.Count > 0 && (gotDC.Min != want.Min || gotDC.Max != want.Max)) {
			t.Fatalf("query %d (sel %g): dc %+v != scan %+v", i, sel, gotDC, want)
		}
		if gotX.Count != want.Count || !closeEnough(gotX.Sum, want.Sum) ||
			(want.Count > 0 && (gotX.Min != want.Min || gotX.Max != want.Max)) {
			t.Fatalf("query %d (sel %g): xtree %+v != scan %+v", i, sel, gotX, want)
		}
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))+1e-9
}

func TestToXQueryUnconstrainedDims(t *testing.T) {
	g, err := New(9, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	// A query of ALL in every dimension constrains nothing: the rect must
	// cover every registered code and the filter must accept everything.
	q := mds.Top(4)
	rect, filter, err := g.ToXQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Records(50) {
		p, _ := g.XPoint(r)
		if !rect.ContainsPoint(p) {
			t.Fatalf("ALL-rect misses point %v", p)
		}
		if !filter(p) {
			t.Fatal("ALL-filter rejected a point")
		}
	}
	if _, _, err := g.ToXQuery(mds.Top(2)); err == nil {
		t.Fatal("wrong arity accepted")
	}
	// Single-value constraint at region level.
	cust, _ := g.Schema().Dim(DimCustomer)
	regions, _ := cust.ValuesAt(3)
	q2 := mds.Top(4)
	q2[DimCustomer] = mds.DimSet{Level: 3, IDs: []hierarchy.ID{regions[0]}}
	rect2, filter2, err := g.ToXQuery(q2)
	if err != nil {
		t.Fatal(err)
	}
	if rect2.Lo[0] != regions[0].Code() || rect2.Hi[0] != regions[0].Code() {
		t.Fatalf("region constraint not reflected: %v", rect2)
	}
	match, miss := 0, 0
	for _, r := range g.Records(200) {
		p, _ := g.XPoint(r)
		ok, _ := q2.ContainsLeaves(g.Schema().Space(), r.Coords)
		if (rect2.ContainsPoint(p) && filter2(p)) != ok {
			t.Fatalf("X query disagrees with MDS membership for %v", r.Coords)
		}
		if ok {
			match++
		} else {
			miss++
		}
	}
	if match == 0 || miss == 0 {
		t.Fatalf("degenerate test data: match=%d miss=%d", match, miss)
	}
}

func TestRollupQueries(t *testing.T) {
	g, err := New(17, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(1500)
	scan := seqscan.New(g.Schema())
	for _, r := range recs {
		scan.Insert(r)
	}
	xt, err := xtree.New(g.XDims(), xtree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		p, _ := g.XPoint(r)
		xt.Insert(p, r.Measures[0])
	}

	qg := g.Queries(23)
	space := g.Schema().Space()
	for i := 0; i < 60; i++ {
		q, err := qg.Rollup(1 + i%2)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.MDS.Validate(space); err != nil {
			t.Fatalf("rollup MDS invalid: %v", err)
		}
		// Exactly `dims` dimensions constrained, at coarse levels.
		constrained := 0
		for d, ds := range q.MDS {
			if ds.Level == hierarchy.LevelALL {
				continue
			}
			constrained++
			if ds.Level < space[d].TopLevel()-1 {
				t.Fatalf("rollup constrained dim %d at fine level %d", d, ds.Level)
			}
			if len(ds.IDs) > 2 {
				t.Fatalf("rollup dim %d has %d values", d, len(ds.IDs))
			}
		}
		if want := 1 + i%2; constrained != want {
			t.Fatalf("rollup constrained %d dims, want %d", constrained, want)
		}
		// Cross-system agreement.
		want, err := scan.RangeAgg(q.MDS, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := xt.RangeQuery(q.Rect, q.Filter)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || !closeEnough(got.Sum, want.Sum) {
			t.Fatalf("rollup %d: xtree %+v != scan %+v", i, got, want)
		}
	}
	if _, err := qg.Rollup(0); err == nil {
		t.Fatal("Rollup(0) accepted")
	}
	if _, err := qg.Rollup(9); err == nil {
		t.Fatal("Rollup(9) accepted")
	}
}

func TestScaleFor(t *testing.T) {
	small := ScaleFor(1000)
	if small.Customers != 1000 || small.Suppliers != 100 || small.Parts != 1500 {
		t.Fatalf("floors not applied: %+v", small)
	}
	mid := ScaleFor(300000)
	if mid.Customers != 7500 || mid.Suppliers != 500 || mid.Parts != 10000 {
		t.Fatalf("mid scale: %+v", mid)
	}
	huge := ScaleFor(100000000)
	if huge.Customers != 150000 || huge.Suppliers != 10000 || huge.Parts != 200000 {
		t.Fatalf("caps not applied: %+v", huge)
	}
	if huge.Regions != 5 || huge.Brands != 25 {
		t.Fatalf("fixed tables must not scale: %+v", huge)
	}
}

func TestSeqScanStore(t *testing.T) {
	g, err := New(13, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New(g.Schema())
	recs := g.Records(100)
	var want float64
	for _, r := range recs {
		if err := scan.Insert(r); err != nil {
			t.Fatal(err)
		}
		want += r.Measures[0]
	}
	if scan.Count() != 100 {
		t.Fatalf("count = %d", scan.Count())
	}
	got, err := scan.RangeQuery(mds.Top(4), cube.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !closeEnough(got, want) {
		t.Fatalf("sum = %g want %g", got, want)
	}
	if scan.RecordsScanned != 100 {
		t.Fatalf("RecordsScanned = %d", scan.RecordsScanned)
	}
	if _, err := scan.RangeQuery(mds.Top(4), cube.Sum, 3); err == nil {
		t.Fatal("bad measure accepted")
	}
	if _, err := scan.RangeQuery(mds.Top(2), cube.Sum, 0); err == nil {
		t.Fatal("bad arity accepted")
	}
	// Delete semantics.
	if err := scan.Delete(recs[0]); err != nil {
		t.Fatal(err)
	}
	if scan.Count() != 99 {
		t.Fatalf("count after delete = %d", scan.Count())
	}
	if err := scan.Delete(recs[0]); err != seqscan.ErrNotFound {
		t.Fatalf("re-delete = %v", err)
	}
	bad := recs[1].Clone()
	bad.Coords[0] = hierarchy.MakeID(1, 0)
	if err := scan.Insert(bad); err == nil {
		t.Fatal("invalid record accepted")
	}
}
