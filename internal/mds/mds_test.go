package mds

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/hierarchy"
)

// testSpace builds the paper's example space: Customer (Region > Nation >
// Customer), Supplier (Region > Nation > Supplier), Time (Year > Month).
func testSpace(t testing.TB) Space {
	t.Helper()
	cust := hierarchy.MustNew("Customer", "Customer", "Nation", "Region")
	supp := hierarchy.MustNew("Supplier", "Supplier", "Nation", "Region")
	tim := hierarchy.MustNew("Time", "Month", "Year")
	return Space{cust, supp, tim}
}

// registerPaperExample loads the running example of §3.2:
// (Germany, North America, 1996, $) and (France, North America, 1997, $).
func registerPaperExample(t testing.TB, space Space) (recA, recB []hierarchy.ID) {
	t.Helper()
	ca, err := space[0].Register("Europe", "Germany", "C1")
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := space[0].Register("Europe", "France", "C2")
	sa, _ := space[1].Register("North America", "USA", "S1")
	sb, _ := space[1].Register("North America", "Canada", "S2")
	ta, _ := space[2].Register("1996", "1996-06")
	tb, _ := space[2].Register("1997", "1997-01")
	return []hierarchy.ID{ca, sa, ta}, []hierarchy.ID{cb, sb, tb}
}

func TestTopMDS(t *testing.T) {
	space := testSpace(t)
	top := Top(len(space))
	if err := top.Validate(space); err != nil {
		t.Fatalf("Top invalid: %v", err)
	}
	if top.Size() != 3 || top.Volume() != 1 {
		t.Errorf("Top size=%d volume=%g", top.Size(), top.Volume())
	}
	for _, d := range top {
		if d.Level != hierarchy.LevelALL || !d.IDs[0].IsALL() {
			t.Errorf("Top dim = %+v", d)
		}
	}
}

// TestPaperExampleCover reproduces the §3.2 worked example: the MDS of the
// two sample records at relevant levels (nation, region-ish) and its lift.
func TestPaperExampleCover(t *testing.T) {
	space := testSpace(t)
	recA, recB := registerPaperExample(t, space)

	cover, err := Cover(space, FromLeaves(recA), FromLeaves(recB))
	if err != nil {
		t.Fatalf("Cover: %v", err)
	}
	// Leaf-level cover: each dimension holds both leaves.
	for i, d := range cover {
		if d.Level != 0 || len(d.IDs) != 2 {
			t.Errorf("dim %d cover = %+v, want 2 leaf values", i, d)
		}
	}

	// Lift dimension 0 to nation level (level 1): {Germany, France}.
	lifted, err := liftDim(space[0], cover[0], 1)
	if err != nil {
		t.Fatalf("liftDim: %v", err)
	}
	if lifted.Level != 1 || len(lifted.IDs) != 2 {
		t.Errorf("nation-level lift = %+v", lifted)
	}
	// Lift to region level: {Europe} — a single value, as in the paper.
	region, err := liftDim(space[0], cover[0], 2)
	if err != nil {
		t.Fatalf("liftDim: %v", err)
	}
	if region.Level != 2 || len(region.IDs) != 1 {
		t.Errorf("region-level lift = %+v, want single {Europe}", region)
	}
	// Supplier dimension lifted to region: {North America}.
	supRegion, _ := liftDim(space[1], cover[1], 2)
	if len(supRegion.IDs) != 1 {
		t.Errorf("supplier region lift = %+v, want {North America}", supRegion)
	}
}

func TestFromLeavesAndContainsLeaves(t *testing.T) {
	space := testSpace(t)
	recA, recB := registerPaperExample(t, space)

	m := FromLeaves(recA)
	if err := m.Validate(space); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ok, err := m.ContainsLeaves(space, recA)
	if err != nil || !ok {
		t.Errorf("record MDS should contain its own record: %v %v", ok, err)
	}
	ok, _ = m.ContainsLeaves(space, recB)
	if ok {
		t.Error("record MDS should not contain a different record")
	}

	cover, _ := Cover(space, FromLeaves(recA), FromLeaves(recB))
	for _, rec := range [][]hierarchy.ID{recA, recB} {
		ok, err := cover.ContainsLeaves(space, rec)
		if err != nil || !ok {
			t.Errorf("cover must contain member record: %v %v", ok, err)
		}
	}
	if ok, _ := Top(3).ContainsLeaves(space, recA); !ok {
		t.Error("Top must contain every record")
	}
	if _, err := m.ContainsLeaves(space, recA[:2]); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestContainsDefinition(t *testing.T) {
	space := testSpace(t)
	recA, recB := registerPaperExample(t, space)
	a, b := FromLeaves(recA), FromLeaves(recB)
	cover, _ := Cover(space, a, b)

	for _, m := range []MDS{a, b, cover} {
		ok, err := Contains(space, cover, m)
		if err != nil || !ok {
			t.Errorf("cover must contain %v: %v %v", m, ok, err)
		}
		ok, err = Contains(space, Top(3), m)
		if err != nil || !ok {
			t.Errorf("Top must contain %v: %v %v", m, ok, err)
		}
	}
	if ok, _ := Contains(space, a, cover); ok {
		t.Error("a record MDS cannot contain the two-record cover")
	}
	if ok, _ := Contains(space, a, b); ok {
		t.Error("disjoint record MDSs cannot contain each other")
	}
	// Lifted cover (coarser) contains the leaf-level cover, not vice versa.
	liftedDim, _ := liftDim(space[0], cover[0], 2)
	coarse := cover.Clone()
	coarse[0] = liftedDim
	if ok, _ := Contains(space, coarse, cover); !ok {
		t.Error("region-level MDS must contain nation/leaf-level one")
	}
	if ok, _ := Contains(space, cover, coarse); ok {
		t.Error("leaf-level MDS must not contain region-level one")
	}
	if _, err := Contains(space, a, Top(2)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestOverlapAndExtension(t *testing.T) {
	space := testSpace(t)
	recA, recB := registerPaperExample(t, space)
	a, b := FromLeaves(recA), FromLeaves(recB)

	ov, err := Overlap(space, a, b)
	if err != nil {
		t.Fatalf("Overlap: %v", err)
	}
	if ov != 0 {
		t.Errorf("disjoint records overlap = %g, want 0", ov)
	}
	ov, _ = Overlap(space, a, a)
	if ov != 1 {
		t.Errorf("self overlap = %g, want 1", ov)
	}
	ext, err := Extension(space, a, b)
	if err != nil {
		t.Fatalf("Extension: %v", err)
	}
	if ext != 8 { // 2×2×2 leaf values
		t.Errorf("extension = %g, want 8", ext)
	}
	// Overlap with Top aligns a up to ALL everywhere: full overlap of 1 cell.
	ov, _ = Overlap(space, a, Top(3))
	if ov != 1 {
		t.Errorf("overlap with Top = %g, want 1", ov)
	}
	// Mixed levels: region-level {Europe} vs nation-level {Germany,France}.
	cover, _ := Cover(space, a, b)
	liftedDim, _ := liftDim(space[0], cover[0], 2)
	coarse := cover.Clone()
	coarse[0] = liftedDim
	ov, _ = Overlap(space, coarse, cover)
	if ov == 0 {
		t.Error("coarse and fine views of the same subcube must overlap")
	}
}

func TestOverlapSymmetryQuickLike(t *testing.T) {
	space, leaves := randomSpace(t, 99, 300)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		m := randomMDS(rng, space, leaves)
		n := randomMDS(rng, space, leaves)
		ov1, err1 := Overlap(space, m, n)
		ov2, err2 := Overlap(space, n, m)
		if err1 != nil || err2 != nil {
			t.Fatalf("Overlap errs: %v %v", err1, err2)
		}
		if ov1 != ov2 {
			t.Fatalf("overlap not symmetric: %g vs %g\nm=%v\nn=%v", ov1, ov2, m, n)
		}
		e1, _ := Extension(space, m, n)
		e2, _ := Extension(space, n, m)
		if e1 != e2 {
			t.Fatalf("extension not symmetric: %g vs %g", e1, e2)
		}
		if e1 < ov1 {
			t.Fatalf("extension %g < overlap %g", e1, ov1)
		}
		// Self-laws.
		ovSelf, _ := Overlap(space, m, m)
		extSelf, _ := Extension(space, m, m)
		if ovSelf != m.Volume() || extSelf != m.Volume() {
			t.Fatalf("self overlap/extension %g/%g, want volume %g", ovSelf, extSelf, m.Volume())
		}
	}
}

// TestCoverLaws checks coverage and minimality (Definition 3) on random
// member sets: the cover contains every member; and no per-dimension value
// of the cover can be dropped without losing coverage.
func TestCoverLaws(t *testing.T) {
	space, leaves := randomSpace(t, 5, 200)
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 100; round++ {
		k := 2 + rng.Intn(5)
		members := make([]MDS, k)
		for i := range members {
			members[i] = randomMDS(rng, space, leaves)
		}
		cover, err := Cover(space, members...)
		if err != nil {
			t.Fatalf("Cover: %v", err)
		}
		if err := cover.Validate(space); err != nil {
			t.Fatalf("cover invalid: %v", err)
		}
		for _, m := range members {
			ok, err := Contains(space, cover, m)
			if err != nil || !ok {
				t.Fatalf("coverage violated: cover %v does not contain %v (%v)", cover, m, err)
			}
		}
		// Minimality: removing any value from any dimension set breaks
		// coverage of at least one member.
		for dim := range cover {
			if cover[dim].Level == hierarchy.LevelALL || len(cover[dim].IDs) == 1 {
				continue
			}
			drop := rng.Intn(len(cover[dim].IDs))
			reduced := cover.Clone()
			reduced[dim].IDs = append(reduced[dim].IDs[:drop], reduced[dim].IDs[drop+1:]...)
			still := true
			for _, m := range members {
				ok, _ := Contains(space, reduced, m)
				if !ok {
					still = false
					break
				}
			}
			if still {
				t.Fatalf("minimality violated: dropped value %d of dim %d and still cover all members", drop, dim)
			}
		}
	}
}

func TestAdaptAndAlign(t *testing.T) {
	space := testSpace(t)
	recA, recB := registerPaperExample(t, space)
	a := FromLeaves(recA)
	cover, _ := Cover(space, a, FromLeaves(recB))
	coarse := cover.Clone()
	d, _ := liftDim(space[0], cover[0], 2)
	coarse[0] = d

	adapted, err := Adapt(space, a, coarse)
	if err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	if adapted[0].Level != 2 {
		t.Errorf("dim 0 adapted level = %d, want 2", adapted[0].Level)
	}
	if adapted[1].Level != 0 || adapted[2].Level != 0 {
		t.Errorf("unrelated dims must keep their levels: %v", adapted)
	}
	// Align lifts each side only where the other is higher.
	am, an, err := Align(space, a, coarse)
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	if am[0].Level != 2 || an[0].Level != 2 {
		t.Errorf("align dim0 levels = %d,%d", am[0].Level, an[0].Level)
	}
	if an[1].Level != 0 {
		t.Errorf("align must lower nothing: %v", an)
	}
	if _, err := Adapt(space, a, Top(2)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestPerDimensionOps(t *testing.T) {
	space := testSpace(t)
	recA, recB := registerPaperExample(t, space)
	a, b := FromLeaves(recA), FromLeaves(recB)

	for dim := 0; dim < 3; dim++ {
		ov, err := OverlapIn(space, a, b, dim)
		if err != nil {
			t.Fatalf("OverlapIn: %v", err)
		}
		if ov != 0 {
			t.Errorf("dim %d overlap = %d, want 0", dim, ov)
		}
		ext, err := ExtensionIn(space, a, b, dim)
		if err != nil {
			t.Fatalf("ExtensionIn: %v", err)
		}
		if ext != 2 {
			t.Errorf("dim %d extension = %d, want 2", dim, ext)
		}
	}
	// Against a coarser operand the finer one is lifted first.
	cover, _ := Cover(space, a, b)
	coarse := cover.Clone()
	d, _ := liftDim(space[0], cover[0], 2)
	coarse[0] = d
	ov, _ := OverlapIn(space, a, coarse, 0)
	if ov != 1 {
		t.Errorf("lifted overlap = %d, want 1 ({Europe})", ov)
	}
	if _, err := OverlapIn(space, a, b, 99); err == nil {
		t.Error("bad dim should fail")
	}
}

func TestValidateRejections(t *testing.T) {
	space := testSpace(t)
	recA, _ := registerPaperExample(t, space)
	good := FromLeaves(recA)

	cases := map[string]MDS{
		"wrong dim count": good[:2],
		"empty dim":       {good[0], {Level: 0, IDs: nil}, good[2]},
		"bad ALL":         {good[0], {Level: hierarchy.LevelALL, IDs: []hierarchy.ID{recA[1]}}, good[2]},
		"level mismatch":  {good[0], {Level: 1, IDs: []hierarchy.ID{recA[1]}}, good[2]},
		"level range":     {good[0], {Level: 9, IDs: []hierarchy.ID{hierarchy.MakeID(9, 0)}}, good[2]},
		"unsorted": {good[0], {Level: 0, IDs: []hierarchy.ID{
			hierarchy.MakeID(0, 1), hierarchy.MakeID(0, 0)}}, good[2]},
		"duplicate": {good[0], {Level: 0, IDs: []hierarchy.ID{
			hierarchy.MakeID(0, 0), hierarchy.MakeID(0, 0)}}, good[2]},
	}
	for name, m := range cases {
		if err := m.Validate(space); err == nil {
			t.Errorf("%s: Validate accepted %v", name, m)
		}
	}
	if err := good.Validate(space); err != nil {
		t.Errorf("good MDS rejected: %v", err)
	}
}

func TestEqualAndClone(t *testing.T) {
	space := testSpace(t)
	recA, recB := registerPaperExample(t, space)
	a, b := FromLeaves(recA), FromLeaves(recB)
	if !a.Equal(a.Clone()) {
		t.Error("clone must equal original")
	}
	if a.Equal(b) {
		t.Error("different MDSs must not be equal")
	}
	c := a.Clone()
	c[0].IDs[0] = recB[0]
	if a.Equal(c) {
		t.Error("mutating a clone must not affect equality with original")
	}
	if a[0].IDs[0] == recB[0] {
		t.Error("clone shares backing array with original")
	}
	if a.Equal(a[:2]) {
		t.Error("prefix must not be equal")
	}
}

func TestCodecRoundtrip(t *testing.T) {
	space, leaves := randomSpace(t, 31, 150)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		m := randomMDS(rng, space, leaves)
		buf := m.AppendEncode(nil)
		if len(buf) != m.EncodedSize() {
			t.Fatalf("EncodedSize = %d, wrote %d", m.EncodedSize(), len(buf))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("Decode consumed %d of %d", n, len(buf))
		}
		if !m.Equal(got) {
			t.Fatalf("roundtrip mismatch:\n in %v\nout %v", m, got)
		}
	}
	// Top roundtrips too.
	top := Top(len(space))
	buf := top.AppendEncode(nil)
	got, _, err := Decode(buf)
	if err != nil || !top.Equal(got) {
		t.Fatalf("Top roundtrip: %v %v", got, err)
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	space := testSpace(t)
	recA, _ := registerPaperExample(t, space)
	buf := FromLeaves(recA).AppendEncode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("Decode accepted truncation at %d", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[1] = hierarchy.LevelALL // dim 0 claims ALL but carries a value count
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode accepted ALL entry with values")
	}
}

// TestCodecRejectsOverflowCount: a value count near 2^62 used to overflow
// int(count)*4 to a non-positive byte budget, pass the truncation check,
// and panic in make(). It must fail closed instead.
func TestCodecRejectsOverflowCount(t *testing.T) {
	for _, count := range []uint64{1 << 62, 1<<62 + 1, 1 << 61, math.MaxUint64 >> 1} {
		buf := binary.AppendUvarint([]byte{1, 0}, count) // 1 dim, level 0
		if _, _, err := Decode(buf); err == nil {
			t.Errorf("Decode accepted value count %d", count)
		}
	}
}

// randomSpace builds a 3-dimensional space with randomized fanout and
// registers nLeaves leaf paths per dimension.
func randomSpace(t testing.TB, seed int64, nLeaves int) (Space, [][]hierarchy.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := testSpace(t)
	leaves := make([][]hierarchy.ID, len(space))
	for d, h := range space {
		depth := h.Depth()
		for i := 0; i < nLeaves; i++ {
			path := make([]string, depth)
			for l := 0; l < depth-1; l++ {
				path[l] = fmt.Sprintf("v%d_%d", l, rng.Intn(3+l*4))
			}
			path[depth-1] = fmt.Sprintf("leaf%d", i)
			id, err := h.Register(path...)
			if err != nil {
				t.Fatal(err)
			}
			leaves[d] = append(leaves[d], id)
		}
	}
	return space, leaves
}

// randomMDS builds a valid random MDS over the space: per dimension it
// picks a level (occasionally ALL) and a nonempty subset of values at that
// level derived from registered leaves.
func randomMDS(rng *rand.Rand, space Space, leaves [][]hierarchy.ID) MDS {
	m := make(MDS, len(space))
	for d, h := range space {
		if rng.Intn(8) == 0 {
			m[d] = AllDim()
			continue
		}
		level := rng.Intn(h.Depth())
		// Collect the distinct ancestors available at this level first: a
		// blind rejection loop can demand more values than exist.
		distinct := make(map[hierarchy.ID]struct{})
		for _, leaf := range leaves[d] {
			anc, err := h.AncestorAt(leaf, level)
			if err != nil {
				panic(err)
			}
			distinct[anc] = struct{}{}
		}
		pool := make([]hierarchy.ID, 0, len(distinct))
		for id := range distinct {
			pool = append(pool, id)
		}
		k := 1 + rng.Intn(4)
		if k > len(pool) {
			k = len(pool)
		}
		perm := rng.Perm(len(pool))[:k]
		ids := make([]hierarchy.ID, 0, k)
		for _, p := range perm {
			ids = append(ids, pool[p])
		}
		hierarchy.SortIDs(ids)
		m[d] = DimSet{Level: level, IDs: ids}
	}
	return m
}

func BenchmarkOverlap(b *testing.B) {
	space, leaves := randomSpace(b, 1, 500)
	rng := rand.New(rand.NewSource(2))
	m := randomMDS(rng, space, leaves)
	n := randomMDS(rng, space, leaves)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Overlap(space, m, n)
	}
}

func BenchmarkCover(b *testing.B) {
	space, leaves := randomSpace(b, 3, 500)
	rng := rand.New(rand.NewSource(4))
	members := make([]MDS, 16)
	for i := range members {
		members[i] = randomMDS(rng, space, leaves)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cover(space, members...)
	}
}
