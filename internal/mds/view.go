package mds

import (
	"encoding/binary"
	"fmt"

	"github.com/dcindex/dctree/internal/hierarchy"
)

// Zero-copy access to encoded MDSs.
//
// The flat node layout (core layout v3) keeps every entry's MDS in its wire
// encoding and prunes directly over the bytes. ViewIter walks one encoded
// MDS without materializing DimSets or copying ID slices: the descent reads
// each dimension's level tag and tests its IDs against the query masks in
// place. DimSet materialization stays available (DimView.DimSet) for the
// rare slow path that needs Align/Overlap over real value sets.
//
// AppendDecode is the arena-backed sibling of Decode: it parses into
// caller-owned DimSet and ID slices so a node decoder can amortize one
// allocation across every entry of the node instead of paying one per
// dimension set.

// DimView is a read-only view of one dimension set inside an encoded MDS:
// the level tag plus the raw little-endian ID words, still in the buffer
// they were decoded from. The zero value is not meaningful.
type DimView struct {
	Level int
	ids   []byte // 4 bytes per ID, little-endian; empty for the ALL entry
}

// IsALL reports whether the dimension is unconstrained.
func (v DimView) IsALL() bool { return v.Level == hierarchy.LevelALL }

// Len returns the number of IDs (0 for the ALL entry, whose single implicit
// ALL value is reconstructed by DimSet).
func (v DimView) Len() int { return len(v.ids) / 4 }

// ID returns the i-th ID without bounds checking beyond the slice's own.
func (v DimView) ID(i int) hierarchy.ID {
	return hierarchy.ID(binary.LittleEndian.Uint32(v.ids[4*i:]))
}

// DimSet materializes the view as a DimSet (allocating), for code paths
// that need real value-set operations.
func (v DimView) DimSet() DimSet {
	if v.IsALL() {
		return AllDim()
	}
	ids := make([]hierarchy.ID, v.Len())
	for i := range ids {
		ids[i] = v.ID(i)
	}
	return DimSet{Level: v.Level, IDs: ids}
}

// ViewIter is a sequential cursor over the dimension sets of one encoded
// MDS. Create it with NewViewIter and call Next exactly Dims times; any
// malformed input surfaces as Next returning ok=false, so callers fail
// closed without error plumbing per dimension.
type ViewIter struct {
	b    []byte
	off  int
	dims int
	i    int
}

// NewViewIter opens a cursor over an encoded MDS and returns its dimension
// count. The buffer must contain exactly one encoded MDS; Rem reports
// trailing bytes after the last dimension.
func NewViewIter(b []byte) (ViewIter, error) {
	if len(b) < 1 {
		return ViewIter{}, fmt.Errorf("mds: truncated header")
	}
	return ViewIter{b: b, off: 1, dims: int(b[0])}, nil
}

// Dims returns the encoded dimension count.
func (it *ViewIter) Dims() int { return it.dims }

// Next returns the next dimension set view. ok is false once all dimensions
// were consumed or the encoding is malformed (truncated, ALL entry with
// values, empty non-ALL value set) — indistinguishable by design; callers
// that must tell them apart compare the count of successful calls to Dims.
func (it *ViewIter) Next() (v DimView, ok bool) {
	if it.i >= it.dims || it.off >= len(it.b) {
		return DimView{}, false
	}
	level := int(it.b[it.off])
	it.off++
	count, n := binary.Uvarint(it.b[it.off:])
	if n <= 0 {
		return DimView{}, false
	}
	it.off += n
	if level == hierarchy.LevelALL {
		if count != 0 {
			return DimView{}, false
		}
		it.i++
		return DimView{Level: hierarchy.LevelALL}, true
	}
	if count == 0 || count > uint64(len(it.b)-it.off)/4 {
		return DimView{}, false
	}
	v = DimView{Level: level, ids: it.b[it.off : it.off+int(count)*4]}
	it.off += int(count) * 4
	it.i++
	return v, true
}

// Rem returns the number of unconsumed bytes. After Dims successful Next
// calls on a well-formed single-MDS buffer it is 0.
func (it *ViewIter) Rem() int { return len(it.b) - it.off }

// AppendDecode parses an MDS from the front of buf like Decode, but carves
// the result out of the caller's arenas: dimension sets are appended to
// *dims and ID values to *ids, and the returned MDS (plus each DimSet.IDs)
// is a capacity-capped subslice of them. Arena growth reallocations leave
// previously returned subslices aliasing the old backing arrays, which stay
// valid because decoded values are never mutated. One node's worth of
// entries therefore decodes with O(1) slice allocations instead of O(dims)
// per entry.
func AppendDecode(buf []byte, dims *[]DimSet, ids *[]hierarchy.ID) (MDS, int, error) {
	if len(buf) < 1 {
		return nil, 0, fmt.Errorf("mds: truncated header")
	}
	nd := int(buf[0])
	off := 1
	dimStart := len(*dims)
	for i := 0; i < nd; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("mds: truncated level byte in dim %d", i)
		}
		level := int(buf[off])
		off++
		count, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("mds: bad value count in dim %d", i)
		}
		off += n
		if level == hierarchy.LevelALL {
			if count != 0 {
				return nil, 0, fmt.Errorf("mds: ALL entry with %d values in dim %d", count, i)
			}
			*dims = append(*dims, AllDim())
			continue
		}
		if count == 0 {
			return nil, 0, fmt.Errorf("mds: empty value set in dim %d", i)
		}
		// Bound count by the remaining bytes in uint64 space: int(count)*4
		// would overflow for hostile counts near 2^62 and slip past the
		// check into an append that panics or over-allocates.
		if count > uint64(len(buf)-off)/4 {
			return nil, 0, fmt.Errorf("mds: truncated values in dim %d", i)
		}
		idStart := len(*ids)
		for j := 0; j < int(count); j++ {
			*ids = append(*ids, hierarchy.ID(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
		}
		set := (*ids)[idStart:len(*ids):len(*ids)]
		*dims = append(*dims, DimSet{Level: level, IDs: set})
	}
	m := MDS((*dims)[dimStart:len(*dims):len(*dims)])
	return m, off, nil
}
