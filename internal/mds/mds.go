// Package mds implements minimum describing sequences (MDSs), the
// approximation the DC-tree uses in place of minimum bounding rectangles
// (Ester, Kohlhammer, Kriegel, ICDE 2000, §3.2).
//
// An MDS describes a subcube of a data cube with one entry per dimension.
// The entry for dimension i is a pair (dᵢ, lᵢ): a set of attribute values dᵢ
// that all belong to the relevant level lᵢ of the dimension's concept
// hierarchy. Unlike an MBR, an MDS enumerates exactly the values that occur
// (coverage + minimality, Definition 3), so it covers far less dead space in
// partially ordered dimensions.
//
// All binary operations of Definition 4 (overlap, extension, containment)
// require both operands to hold values of the same hierarchy level in every
// dimension; Align lifts the lower-level operand up by replacing each value
// with its ancestor (the paper's "adapt" step in Figures 5 and 7).
package mds

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/dcindex/dctree/internal/hierarchy"
)

// Space is the ordered list of concept hierarchies of a data cube's
// dimensions. Every MDS operation is defined relative to a Space.
type Space []*hierarchy.Hierarchy

// Errors returned by MDS operations.
var (
	ErrDimMismatch = errors.New("mds: dimension count mismatch")
	ErrBadDimSet   = errors.New("mds: malformed dimension set")
)

// DimSet is one entry (dᵢ, lᵢ) of an MDS: the set of attribute values for
// one dimension, all at hierarchy level Level. IDs are sorted ascending and
// duplicate-free. The ALL entry is represented as Level =
// hierarchy.LevelALL with the single ID hierarchy.ALL.
type DimSet struct {
	Level int
	IDs   []hierarchy.ID
}

// MDS is a minimum describing sequence: one DimSet per dimension of the
// Space.
type MDS []DimSet

// AllDim returns the DimSet describing "every value" of a dimension.
func AllDim() DimSet {
	return DimSet{Level: hierarchy.LevelALL, IDs: []hierarchy.ID{hierarchy.ALL}}
}

// Top returns the MDS (ALL, ..., ALL): the initial MDS of a fresh DC-tree.
func Top(dims int) MDS {
	m := make(MDS, dims)
	for i := range m {
		m[i] = AllDim()
	}
	return m
}

// FromLeaves builds the MDS of a single data record: one singleton set at
// leaf level 0 per dimension. ids must be leaf-level IDs, one per dimension.
func FromLeaves(ids []hierarchy.ID) MDS {
	m := make(MDS, len(ids))
	for i, id := range ids {
		m[i] = DimSet{Level: id.Level(), IDs: []hierarchy.ID{id}}
	}
	return m
}

// Clone returns a deep copy of the MDS.
func (m MDS) Clone() MDS {
	out := make(MDS, len(m))
	for i, d := range m {
		out[i] = DimSet{Level: d.Level, IDs: append([]hierarchy.ID(nil), d.IDs...)}
	}
	return out
}

// Equal reports whether two MDSs are structurally identical.
func (m MDS) Equal(n MDS) bool {
	if len(m) != len(n) {
		return false
	}
	for i := range m {
		if m[i].Level != n[i].Level || len(m[i].IDs) != len(n[i].IDs) {
			return false
		}
		for j := range m[i].IDs {
			if m[i].IDs[j] != n[i].IDs[j] {
				return false
			}
		}
	}
	return true
}

// Size is Definition 4's size(M) = Σᵢ |Mᵢ|: the total number of stored
// attribute values, i.e. the storage footprint driver of the MDS.
func (m MDS) Size() int {
	n := 0
	for _, d := range m {
		n += len(d.IDs)
	}
	return n
}

// Volume is Definition 4's volume(M) = Πᵢ |Mᵢ|, the number of potential
// subcube cells the MDS describes. Returned as float64: per-dimension
// cardinalities are exact small integers, and the product is used only for
// comparisons, where float64 cannot turn a nonzero volume into zero.
func (m MDS) Volume() float64 {
	v := 1.0
	for _, d := range m {
		v *= float64(len(d.IDs))
	}
	return v
}

// Validate checks the structural invariants of the MDS: one DimSet per
// dimension of the space, sorted duplicate-free IDs, every ID at the
// declared level, and the ALL encoding used exactly for ALL entries.
func (m MDS) Validate(space Space) error {
	if len(m) != len(space) {
		return fmt.Errorf("%w: mds has %d dims, space has %d", ErrDimMismatch, len(m), len(space))
	}
	for i, d := range m {
		if len(d.IDs) == 0 {
			return fmt.Errorf("%w: dim %d empty", ErrBadDimSet, i)
		}
		if d.Level == hierarchy.LevelALL {
			if len(d.IDs) != 1 || !d.IDs[0].IsALL() {
				return fmt.Errorf("%w: dim %d at level ALL must be exactly {ALL}", ErrBadDimSet, i)
			}
			continue
		}
		if d.Level < 0 || d.Level >= space[i].Depth() {
			return fmt.Errorf("%w: dim %d level %d outside hierarchy %q", ErrBadDimSet, i, d.Level, space[i].Name())
		}
		for j, id := range d.IDs {
			if id.Level() != d.Level {
				return fmt.Errorf("%w: dim %d id %v not at relevant level %d", ErrBadDimSet, i, id, d.Level)
			}
			if j > 0 && d.IDs[j-1] >= id {
				return fmt.Errorf("%w: dim %d ids not strictly sorted at %d", ErrBadDimSet, i, j)
			}
		}
	}
	return nil
}

// liftDim lifts a DimSet to a higher level of its hierarchy, replacing every
// value with its ancestor at the target level and deduplicating. Lifting to
// LevelALL yields the ALL entry.
func liftDim(h *hierarchy.Hierarchy, d DimSet, level int) (DimSet, error) {
	if level == d.Level {
		return d, nil
	}
	if level == hierarchy.LevelALL {
		return AllDim(), nil
	}
	if level < d.Level {
		return DimSet{}, fmt.Errorf("%w: cannot lower level %d to %d", ErrBadDimSet, d.Level, level)
	}
	lifted := make([]hierarchy.ID, 0, len(d.IDs))
	for _, id := range d.IDs {
		anc, err := h.AncestorAt(id, level)
		if err != nil {
			return DimSet{}, err
		}
		lifted = append(lifted, anc)
	}
	hierarchy.SortIDs(lifted)
	lifted = dedupSorted(lifted)
	return DimSet{Level: level, IDs: lifted}, nil
}

func dedupSorted(ids []hierarchy.ID) []hierarchy.ID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// Adapt lifts m so that in every dimension its level is at least the level
// of n (the paper's "Adapt MDSs of entries to MDS of directory node").
// Dimensions where m is already at or above n's level are unchanged.
func Adapt(space Space, m, n MDS) (MDS, error) {
	if len(m) != len(n) || len(m) != len(space) {
		return nil, ErrDimMismatch
	}
	out := make(MDS, len(m))
	for i := range m {
		target := m[i].Level
		if levelAbove(n[i].Level, target) {
			target = n[i].Level
		}
		d, err := liftDim(space[i], m[i], target)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// levelAbove reports whether level a is strictly above level b in the
// concept hierarchy, treating LevelALL as the top.
func levelAbove(a, b int) bool {
	if a == b {
		return false
	}
	if a == hierarchy.LevelALL {
		return true
	}
	if b == hierarchy.LevelALL {
		return false
	}
	return a > b
}

// AdaptToLevels lifts m so that dimension i sits at least at levels[i]
// (hierarchy.LevelALL for the ALL entry). Dimensions already at or above
// their target are unchanged. This is the workhorse of the DC-tree's
// split: the node's relevant levels, with the split dimension lowered by
// one, become the adaptation target.
func AdaptToLevels(space Space, m MDS, levels []int) (MDS, error) {
	if len(m) != len(levels) || len(m) != len(space) {
		return nil, ErrDimMismatch
	}
	out := make(MDS, len(m))
	for i := range m {
		target := m[i].Level
		if levelAbove(levels[i], target) {
			target = levels[i]
		}
		d, err := liftDim(space[i], m[i], target)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// Align lifts both operands dimension-wise to their common (higher) level,
// as required before any Definition 4 operation. This is the adaption loop
// of the range-query algorithm (Fig. 7), where either operand may hold the
// higher-level values.
func Align(space Space, m, n MDS) (MDS, MDS, error) {
	am, err := Adapt(space, m, n)
	if err != nil {
		return nil, nil, err
	}
	an, err := Adapt(space, n, m)
	if err != nil {
		return nil, nil, err
	}
	return am, an, nil
}

// intersectCount returns |a ∩ b| for sorted ID slices.
func intersectCount(a, b []hierarchy.ID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// unionCount returns |a ∪ b| for sorted ID slices.
func unionCount(a, b []hierarchy.ID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
		n++
	}
	return n + (len(a) - i) + (len(b) - j)
}

// unionSorted returns the sorted union of two sorted ID slices.
func unionSorted(a, b []hierarchy.ID) []hierarchy.ID {
	out := make([]hierarchy.ID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Overlap is Definition 4's overlap(M,N) = Πᵢ |Mᵢ ∩ Nᵢ| after aligning both
// operands. A zero result means the described subcubes are disjoint, which
// is the pruning test of the range-query algorithm.
func Overlap(space Space, m, n MDS) (float64, error) {
	am, an, err := Align(space, m, n)
	if err != nil {
		return 0, err
	}
	v := 1.0
	for i := range am {
		c := intersectCount(am[i].IDs, an[i].IDs)
		if c == 0 {
			return 0, nil
		}
		v *= float64(c)
	}
	return v, nil
}

// Extension is Definition 4's extension(M,N) = Πᵢ |Mᵢ ∪ Nᵢ| after aligning
// both operands: the volume the union of the two MDSs would describe.
func Extension(space Space, m, n MDS) (float64, error) {
	am, an, err := Align(space, m, n)
	if err != nil {
		return 0, err
	}
	v := 1.0
	for i := range am {
		v *= float64(unionCount(am[i].IDs, an[i].IDs))
	}
	return v, nil
}

// Contains reports Definition 4's containment: n contains m iff for every
// dimension i and every value mᵢ ∈ Mᵢ there is some nᵢ ∈ Nᵢ with mᵢ ⪯ nᵢ.
// The operands need not be level-aligned; m's values are lifted to n's
// level per dimension. If m sits at a higher level than n in some dimension
// (m is coarser), containment is false unless n's entry is ALL.
func Contains(space Space, n, m MDS) (bool, error) {
	if len(m) != len(n) || len(m) != len(space) {
		return false, ErrDimMismatch
	}
	for i := range m {
		if n[i].Level == hierarchy.LevelALL {
			continue
		}
		if levelAbove(m[i].Level, n[i].Level) {
			return false, nil
		}
		lifted, err := liftDim(space[i], m[i], n[i].Level)
		if err != nil {
			return false, err
		}
		if !subsetSorted(lifted.IDs, n[i].IDs) {
			return false, nil
		}
	}
	return true, nil
}

// subsetSorted reports a ⊆ b for sorted slices.
func subsetSorted(a, b []hierarchy.ID) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
	}
	return true
}

// ContainsLeaves reports whether the MDS covers a data record given by its
// leaf-level IDs: for every dimension, the record's value lifted to the
// MDS's relevant level must be a member of the dimension set. This is the
// membership test used at data nodes and by the sequential-scan baseline.
func (m MDS) ContainsLeaves(space Space, leaves []hierarchy.ID) (bool, error) {
	if len(leaves) != len(m) || len(m) != len(space) {
		return false, ErrDimMismatch
	}
	for i, leaf := range leaves {
		if m[i].Level == hierarchy.LevelALL {
			continue
		}
		anc, err := space[i].AncestorAt(leaf, m[i].Level)
		if err != nil {
			return false, err
		}
		if !memberSorted(m[i].IDs, anc) {
			return false, nil
		}
	}
	return true, nil
}

func memberSorted(ids []hierarchy.ID, id hierarchy.ID) bool {
	k := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	return k < len(ids) && ids[k] == id
}

// Cover computes the minimum describing sequence of a set of MDSs: per
// dimension the relevant level is the highest member level (coverage
// requires lifting every member; minimality forbids lifting further), and
// the value set is the union of the members' values at that level.
//
// Cover is how a node's MDS is (re)computed from its entries. Because the
// entries' MDSs live at lower levels than the node they came from, the
// cover after a hierarchy split naturally "decreases the relevant level"
// of the split dimension exactly as §3.2 describes.
func Cover(space Space, members ...MDS) (MDS, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: cover of zero MDSs", ErrBadDimSet)
	}
	dims := len(space)
	out := make(MDS, dims)
	for i := 0; i < dims; i++ {
		level := 0
		for _, m := range members {
			if len(m) != dims {
				return nil, ErrDimMismatch
			}
			if levelAbove(m[i].Level, level) {
				level = m[i].Level
			}
		}
		if level == hierarchy.LevelALL {
			out[i] = AllDim()
			continue
		}
		var union []hierarchy.ID
		for _, m := range members {
			lifted, err := liftDim(space[i], m[i], level)
			if err != nil {
				return nil, err
			}
			union = unionSorted(union, lifted.IDs)
		}
		out[i] = DimSet{Level: level, IDs: union}
	}
	return out, nil
}

// String renders the MDS compactly, e.g.
// "({L2#0,L2#3}@2, {ALL}, {L0#1}@0)".
func (m MDS) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range m {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('{')
		for j, id := range d.IDs {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(id.String())
		}
		b.WriteByte('}')
		if d.Level != hierarchy.LevelALL {
			fmt.Fprintf(&b, "@%d", d.Level)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// OverlapIn returns |Mᵢ ∩ Nᵢ| in one dimension after aligning that
// dimension only. The hierarchy split uses per-dimension overlap and union
// sizes to drive its split-dimension decisions (Fig. 6).
func OverlapIn(space Space, m, n MDS, dim int) (int, error) {
	a, b, err := alignDim(space, m, n, dim)
	if err != nil {
		return 0, err
	}
	return intersectCount(a.IDs, b.IDs), nil
}

// ExtensionIn returns |Mᵢ ∪ Nᵢ| in one dimension after aligning that
// dimension only.
func ExtensionIn(space Space, m, n MDS, dim int) (int, error) {
	a, b, err := alignDim(space, m, n, dim)
	if err != nil {
		return 0, err
	}
	return unionCount(a.IDs, b.IDs), nil
}

func alignDim(space Space, m, n MDS, dim int) (DimSet, DimSet, error) {
	if dim < 0 || dim >= len(space) || len(m) != len(space) || len(n) != len(space) {
		return DimSet{}, DimSet{}, ErrDimMismatch
	}
	a, b := m[dim], n[dim]
	if levelAbove(b.Level, a.Level) {
		var err error
		a, err = liftDim(space[dim], a, b.Level)
		if err != nil {
			return DimSet{}, DimSet{}, err
		}
	} else if levelAbove(a.Level, b.Level) {
		var err error
		b, err = liftDim(space[dim], b, a.Level)
		if err != nil {
			return DimSet{}, DimSet{}, err
		}
	}
	return a, b, nil
}
