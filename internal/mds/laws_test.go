package mds

import (
	"math/rand"
	"testing"
)

// Algebraic laws of the MDS operations, checked on randomized instances.
// These complement the targeted tests in mds_test.go: every law here is
// something the DC-tree's correctness quietly depends on.

func TestContainsReflexiveAndTransitive(t *testing.T) {
	space, leaves := randomSpace(t, 101, 200)
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 300; i++ {
		a := randomMDS(rng, space, leaves)
		ok, err := Contains(space, a, a)
		if err != nil || !ok {
			t.Fatalf("Contains not reflexive: %v %v\n%v", ok, err, a)
		}
		// Build b ⊇ a by covering with another MDS, and c ⊇ b likewise:
		// transitivity demands c ⊇ a.
		b, err := Cover(space, a, randomMDS(rng, space, leaves))
		if err != nil {
			t.Fatal(err)
		}
		c, err := Cover(space, b, randomMDS(rng, space, leaves))
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]MDS{{b, a}, {c, b}, {c, a}} {
			ok, err := Contains(space, pair[0], pair[1])
			if err != nil || !ok {
				t.Fatalf("containment chain broken at step %v: %v %v", i, ok, err)
			}
		}
	}
}

func TestCoverIdempotentAndMonotone(t *testing.T) {
	space, leaves := randomSpace(t, 107, 200)
	rng := rand.New(rand.NewSource(109))
	for i := 0; i < 300; i++ {
		a := randomMDS(rng, space, leaves)
		b := randomMDS(rng, space, leaves)
		ab, err := Cover(space, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Idempotence: covering the cover with its members changes nothing.
		again, err := Cover(space, ab, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ab.Equal(again) {
			t.Fatalf("Cover not idempotent:\n ab=%v\n again=%v", ab, again)
		}
		// Commutativity.
		ba, err := Cover(space, b, a)
		if err != nil {
			t.Fatal(err)
		}
		if !ab.Equal(ba) {
			t.Fatalf("Cover not commutative")
		}
		// Volume monotonicity at aligned levels: the cover describes at
		// least as much as each member lifted to its levels.
		la, err := Adapt(space, a, ab)
		if err != nil {
			t.Fatal(err)
		}
		if la.Volume() > ab.Volume() {
			t.Fatalf("cover smaller than lifted member: %g < %g", ab.Volume(), la.Volume())
		}
	}
}

func TestOverlapBoundedByVolume(t *testing.T) {
	space, leaves := randomSpace(t, 113, 200)
	rng := rand.New(rand.NewSource(127))
	for i := 0; i < 300; i++ {
		a := randomMDS(rng, space, leaves)
		b := randomMDS(rng, space, leaves)
		ov, err := Overlap(space, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// After aligning, overlap cannot exceed either operand's volume.
		aa, bb, err := Align(space, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ov > aa.Volume() || ov > bb.Volume() {
			t.Fatalf("overlap %g exceeds volumes %g/%g", ov, aa.Volume(), bb.Volume())
		}
		// Containment implies full overlap of the contained operand.
		cover, err := Cover(space, a, b)
		if err != nil {
			t.Fatal(err)
		}
		la, _ := Adapt(space, a, cover)
		ovCover, err := Overlap(space, cover, la)
		if err != nil {
			t.Fatal(err)
		}
		if ovCover != la.Volume() {
			t.Fatalf("contained operand overlaps %g of its %g cells", ovCover, la.Volume())
		}
	}
}

func TestAdaptNeverLosesCoverage(t *testing.T) {
	space, leaves := randomSpace(t, 131, 200)
	rng := rand.New(rand.NewSource(137))
	for i := 0; i < 300; i++ {
		a := randomMDS(rng, space, leaves)
		b := randomMDS(rng, space, leaves)
		lifted, err := Adapt(space, a, b)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := Contains(space, lifted, a)
		if err != nil || !ok {
			t.Fatalf("Adapt lost coverage: %v %v\n a=%v\n lifted=%v", ok, err, a, lifted)
		}
		if err := lifted.Validate(space); err != nil {
			t.Fatalf("lifted invalid: %v", err)
		}
	}
}
