package mds

import (
	"encoding/binary"
	"fmt"

	"github.com/dcindex/dctree/internal/hierarchy"
)

// The on-page encoding of an MDS (used by internal/storage):
//
//	uint8            dimension count
//	per dimension:
//	  uint8          relevant level (hierarchy.LevelALL for the ALL entry)
//	  uvarint        value count
//	  per value:     uint32 little-endian packed ID
//
// The ALL entry is encoded with level tag LevelALL and zero values; the
// single implicit ALL ID is reconstructed on decode. MDSs are variable
// sized by design (§3.2: "an MDS has to store more information and it has
// variable size"); EncodedSize lets node layout code budget page space.

// EncodedSize returns the exact number of bytes AppendEncode will write.
func (m MDS) EncodedSize() int {
	n := 1
	var tmp [binary.MaxVarintLen64]byte
	for _, d := range m {
		n++ // level byte
		if d.Level == hierarchy.LevelALL {
			n += binary.PutUvarint(tmp[:], 0)
			continue
		}
		n += binary.PutUvarint(tmp[:], uint64(len(d.IDs)))
		n += 4 * len(d.IDs)
	}
	return n
}

// AppendEncode appends the binary encoding of the MDS to buf.
func (m MDS) AppendEncode(buf []byte) []byte {
	buf = append(buf, uint8(len(m)))
	var tmp [binary.MaxVarintLen64]byte
	for _, d := range m {
		buf = append(buf, uint8(d.Level))
		if d.Level == hierarchy.LevelALL {
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], 0)]...)
			continue
		}
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(d.IDs)))]...)
		for _, id := range d.IDs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		}
	}
	return buf
}

// Decode parses an MDS from the front of buf and returns it together with
// the number of bytes consumed.
func Decode(buf []byte) (MDS, int, error) {
	if len(buf) < 1 {
		return nil, 0, fmt.Errorf("mds: truncated header")
	}
	dims := int(buf[0])
	off := 1
	m := make(MDS, dims)
	for i := 0; i < dims; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("mds: truncated level byte in dim %d", i)
		}
		level := int(buf[off])
		off++
		count, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("mds: bad value count in dim %d", i)
		}
		off += n
		if level == hierarchy.LevelALL {
			if count != 0 {
				return nil, 0, fmt.Errorf("mds: ALL entry with %d values in dim %d", count, i)
			}
			m[i] = AllDim()
			continue
		}
		if count == 0 {
			return nil, 0, fmt.Errorf("mds: empty value set in dim %d", i)
		}
		// Bound count by the remaining bytes in uint64 space: int(count)*4
		// would overflow for hostile counts near 2^62 and slip past the
		// check into a make() that panics.
		if count > uint64(len(buf)-off)/4 {
			return nil, 0, fmt.Errorf("mds: truncated values in dim %d", i)
		}
		ids := make([]hierarchy.ID, count)
		for j := range ids {
			ids[j] = hierarchy.ID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		m[i] = DimSet{Level: level, IDs: ids}
	}
	return m, off, nil
}
