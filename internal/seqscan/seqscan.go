// Package seqscan implements the sequential-search baseline of the
// DC-tree paper's evaluation (§5.2): a flat file of data records with no
// index. A range query "simply runs through every existing data record and
// determines whether this data record is contained in the range_mds or
// not; in the positive case, the measure value of the data record is added
// to the result."
package seqscan

import (
	"errors"
	"fmt"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// Errors returned by the scanner.
var (
	ErrBadMeasure = errors.New("seqscan: measure index out of range")
	ErrNotFound   = errors.New("seqscan: record not found")
)

// Store is the flat record file. Appends are O(1); every query costs a
// full scan.
type Store struct {
	schema *cube.Schema
	recs   []cube.Record

	// RecordsScanned counts total membership tests across all queries,
	// the scanner's work metric.
	RecordsScanned int64
}

// New creates an empty flat store for the schema.
func New(schema *cube.Schema) *Store {
	return &Store{schema: schema}
}

// Schema returns the store's cube schema.
func (s *Store) Schema() *cube.Schema { return s.schema }

// Count returns the number of stored records.
func (s *Store) Count() int { return len(s.recs) }

// Insert appends one record.
func (s *Store) Insert(rec cube.Record) error {
	if err := s.schema.ValidateRecord(rec); err != nil {
		return err
	}
	s.recs = append(s.recs, rec.Clone())
	return nil
}

// Delete removes one record matching rec exactly.
func (s *Store) Delete(rec cube.Record) error {
	for i := range s.recs {
		if equal(s.recs[i], rec) {
			s.recs[i] = s.recs[len(s.recs)-1]
			s.recs = s.recs[:len(s.recs)-1]
			return nil
		}
	}
	return ErrNotFound
}

func equal(a, b cube.Record) bool {
	if len(a.Coords) != len(b.Coords) || len(a.Measures) != len(b.Measures) {
		return false
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			return false
		}
	}
	for j := range a.Measures {
		if a.Measures[j] != b.Measures[j] {
			return false
		}
	}
	return true
}

// RangeAgg scans all records and aggregates the measure over those inside
// the query MDS.
func (s *Store) RangeAgg(q mds.MDS, measure int) (cube.Agg, error) {
	if measure < 0 || measure >= s.schema.Measures() {
		return cube.Agg{}, fmt.Errorf("%w: %d", ErrBadMeasure, measure)
	}
	if err := q.Validate(s.schema.Space()); err != nil {
		return cube.Agg{}, err
	}
	var agg cube.Agg
	space := s.schema.Space()
	for i := range s.recs {
		s.RecordsScanned++
		ok, err := q.ContainsLeaves(space, s.recs[i].Coords)
		if err != nil {
			return cube.Agg{}, err
		}
		if ok {
			agg.Add(s.recs[i].Measures[measure])
		}
	}
	return agg, nil
}

// RangeQuery is RangeAgg narrowed to one operator.
func (s *Store) RangeQuery(q mds.MDS, op cube.Op, measure int) (float64, error) {
	agg, err := s.RangeAgg(q, measure)
	if err != nil {
		return 0, err
	}
	return agg.Value(op), nil
}
