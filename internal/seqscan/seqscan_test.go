package seqscan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

func testStore(t testing.TB) (*Store, []cube.Record) {
	t.Helper()
	h := hierarchy.MustNew("Dim", "Leaf", "Mid", "Top")
	s := cube.MustNewSchema([]*hierarchy.Hierarchy{h}, "M")
	st := New(s)
	rng := rand.New(rand.NewSource(1))
	var recs []cube.Record
	for i := 0; i < 200; i++ {
		r, err := s.InternRecord([][]string{{
			fmt.Sprintf("T%d", rng.Intn(3)),
			fmt.Sprintf("M%d", rng.Intn(10)),
			fmt.Sprintf("L%d", i),
		}}, []float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Insert(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	return st, recs
}

func TestRangeAggAllOps(t *testing.T) {
	st, recs := testStore(t)
	agg, err := st.RangeAgg(mds.Top(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 200 || agg.Min != 0 || agg.Max != 199 {
		t.Fatalf("agg = %+v", agg)
	}
	if v, _ := st.RangeQuery(mds.Top(1), cube.Avg, 0); math.Abs(v-99.5) > 1e-9 {
		t.Fatalf("avg = %g", v)
	}
	// Constrained query at mid level.
	space := st.Schema().Space()
	mid, _ := space[0].AncestorAt(recs[0].Coords[0], 1)
	q := mds.MDS{{Level: 1, IDs: []hierarchy.ID{mid}}}
	want := cube.Agg{}
	for _, r := range recs {
		ok, _ := q.ContainsLeaves(space, r.Coords)
		if ok {
			want.Add(r.Measures[0])
		}
	}
	got, err := st.RangeAgg(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if want.Count == 0 {
		t.Fatal("degenerate query matched nothing")
	}
}

func TestScannerAccounting(t *testing.T) {
	st, _ := testStore(t)
	st.RecordsScanned = 0
	st.RangeAgg(mds.Top(1), 0)
	st.RangeAgg(mds.Top(1), 0)
	if st.RecordsScanned != 400 {
		t.Fatalf("RecordsScanned = %d", st.RecordsScanned)
	}
}

func TestDeleteSemantics(t *testing.T) {
	st, recs := testStore(t)
	if err := st.Delete(recs[7]); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 199 {
		t.Fatalf("count = %d", st.Count())
	}
	if err := st.Delete(recs[7]); err != ErrNotFound {
		t.Fatalf("re-delete = %v", err)
	}
	ghost := recs[8].Clone()
	ghost.Measures[0] += 0.5
	if err := st.Delete(ghost); err != ErrNotFound {
		t.Fatalf("ghost delete = %v", err)
	}
	agg, _ := st.RangeAgg(mds.Top(1), 0)
	if agg.Count != 199 {
		t.Fatalf("agg count = %d", agg.Count)
	}
}

func TestValidationErrors(t *testing.T) {
	st, recs := testStore(t)
	if _, err := st.RangeAgg(mds.Top(1), 5); err == nil {
		t.Fatal("bad measure accepted")
	}
	if _, err := st.RangeAgg(mds.Top(2), 0); err == nil {
		t.Fatal("bad arity accepted")
	}
	bad := recs[0].Clone()
	bad.Coords[0] = hierarchy.MakeID(2, 0)
	if err := st.Insert(bad); err == nil {
		t.Fatal("non-leaf record accepted")
	}
	// Inserted records are copied, not aliased.
	recs[0].Measures[0] = -1
	agg, _ := st.RangeAgg(mds.Top(1), 0)
	if agg.Min < 0 {
		t.Fatal("store aliased caller's record")
	}
}
