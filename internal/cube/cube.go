// Package cube models the data cube of Gray et al. as used by the DC-tree
// paper (§3.1, Definition 2): d dimensions, each with a concept hierarchy,
// and m dependent measures. A data record is an element
// (a₁,…,a_d, x₁,…,x_m) with aᵢ a leaf attribute value of dimension i and
// xⱼ ∈ ℝ a measure value.
package cube

import (
	"errors"
	"fmt"

	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// Errors returned by cube operations.
var (
	ErrArity      = errors.New("cube: record arity does not match schema")
	ErrNotLeaf    = errors.New("cube: record coordinate is not a leaf-level value")
	ErrNoMeasure  = errors.New("cube: schema has no such measure")
	ErrNoDim      = errors.New("cube: schema has no such dimension")
	ErrEmptyShape = errors.New("cube: schema needs at least one dimension and one measure")
)

// Schema declares the shape of a data cube: its dimensions (each a concept
// hierarchy) and the names of its measures.
type Schema struct {
	dims     mds.Space
	measures []string
}

// NewSchema builds a schema from dimension hierarchies and measure names.
func NewSchema(dims []*hierarchy.Hierarchy, measures ...string) (*Schema, error) {
	if len(dims) == 0 || len(measures) == 0 {
		return nil, ErrEmptyShape
	}
	return &Schema{
		dims:     append(mds.Space(nil), dims...),
		measures: append([]string(nil), measures...),
	}, nil
}

// MustNewSchema is NewSchema but panics on error.
func MustNewSchema(dims []*hierarchy.Hierarchy, measures ...string) *Schema {
	s, err := NewSchema(dims, measures...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns the cube's dimension count.
func (s *Schema) Dims() int { return len(s.dims) }

// Measures returns the cube's measure count.
func (s *Schema) Measures() int { return len(s.measures) }

// Space returns the ordered concept hierarchies of the dimensions.
// The returned slice is owned by the schema.
func (s *Schema) Space() mds.Space { return s.dims }

// Dim returns the hierarchy of dimension i.
func (s *Schema) Dim(i int) (*hierarchy.Hierarchy, error) {
	if i < 0 || i >= len(s.dims) {
		return nil, fmt.Errorf("%w: %d", ErrNoDim, i)
	}
	return s.dims[i], nil
}

// DimIndex resolves a dimension by name.
func (s *Schema) DimIndex(name string) (int, error) {
	for i, h := range s.dims {
		if h.Name() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoDim, name)
}

// MeasureName returns the name of measure j.
func (s *Schema) MeasureName(j int) (string, error) {
	if j < 0 || j >= len(s.measures) {
		return "", fmt.Errorf("%w: %d", ErrNoMeasure, j)
	}
	return s.measures[j], nil
}

// MeasureIndex resolves a measure by name.
func (s *Schema) MeasureIndex(name string) (int, error) {
	for j, m := range s.measures {
		if m == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoMeasure, name)
}

// Record is one data record of the cube: interned leaf-level coordinates,
// one per dimension, and the measure values.
type Record struct {
	Coords   []hierarchy.ID
	Measures []float64
}

// ValidateRecord checks a record against the schema: correct arity, every
// coordinate registered at leaf level of its dimension.
func (s *Schema) ValidateRecord(r Record) error {
	if len(r.Coords) != len(s.dims) || len(r.Measures) != len(s.measures) {
		return fmt.Errorf("%w: %d coords / %d measures, want %d / %d",
			ErrArity, len(r.Coords), len(r.Measures), len(s.dims), len(s.measures))
	}
	for i, c := range r.Coords {
		if c.Level() != 0 {
			return fmt.Errorf("%w: dim %d value %v", ErrNotLeaf, i, c)
		}
		if _, err := s.dims[i].ValueName(c); err != nil {
			return fmt.Errorf("cube: dim %d: %w", i, err)
		}
	}
	return nil
}

// InternRecord interns a record given as per-dimension top-down string
// paths plus measure values, registering unseen attribute values in the
// dimension hierarchies (the dynamic dictionary maintenance of §3.1).
func (s *Schema) InternRecord(paths [][]string, measures []float64) (Record, error) {
	if len(paths) != len(s.dims) || len(measures) != len(s.measures) {
		return Record{}, fmt.Errorf("%w: %d paths / %d measures, want %d / %d",
			ErrArity, len(paths), len(measures), len(s.dims), len(s.measures))
	}
	coords := make([]hierarchy.ID, len(paths))
	for i, p := range paths {
		id, err := s.dims[i].Register(p...)
		if err != nil {
			return Record{}, fmt.Errorf("cube: dim %d: %w", i, err)
		}
		coords[i] = id
	}
	return Record{Coords: coords, Measures: append([]float64(nil), measures...)}, nil
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	return Record{
		Coords:   append([]hierarchy.ID(nil), r.Coords...),
		Measures: append([]float64(nil), r.Measures...),
	}
}
