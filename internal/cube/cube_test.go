package cube

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dcindex/dctree/internal/hierarchy"
)

func testSchema(t testing.TB) *Schema {
	t.Helper()
	cust := hierarchy.MustNew("Customer", "Customer", "Nation", "Region")
	part := hierarchy.MustNew("Part", "Part", "Brand")
	s, err := NewSchema([]*hierarchy.Hierarchy{cust, part}, "ExtendedPrice", "Quantity")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaShape(t *testing.T) {
	s := testSchema(t)
	if s.Dims() != 2 || s.Measures() != 2 {
		t.Fatalf("shape = %d dims, %d measures", s.Dims(), s.Measures())
	}
	if _, err := NewSchema(nil, "m"); err == nil {
		t.Error("schema without dimensions should fail")
	}
	if _, err := NewSchema([]*hierarchy.Hierarchy{hierarchy.MustNew("D", "L")}); err == nil {
		t.Error("schema without measures should fail")
	}
	h, err := s.Dim(0)
	if err != nil || h.Name() != "Customer" {
		t.Errorf("Dim(0) = %v, %v", h, err)
	}
	if _, err := s.Dim(5); err == nil {
		t.Error("Dim(5) should fail")
	}
	if i, err := s.DimIndex("Part"); err != nil || i != 1 {
		t.Errorf("DimIndex(Part) = %d, %v", i, err)
	}
	if _, err := s.DimIndex("Nope"); err == nil {
		t.Error("DimIndex(Nope) should fail")
	}
	if n, err := s.MeasureName(1); err != nil || n != "Quantity" {
		t.Errorf("MeasureName(1) = %q, %v", n, err)
	}
	if _, err := s.MeasureName(9); err == nil {
		t.Error("MeasureName(9) should fail")
	}
	if j, err := s.MeasureIndex("ExtendedPrice"); err != nil || j != 0 {
		t.Errorf("MeasureIndex = %d, %v", j, err)
	}
	if _, err := s.MeasureIndex("Nope"); err == nil {
		t.Error("MeasureIndex(Nope) should fail")
	}
	if len(s.Space()) != 2 {
		t.Errorf("Space len = %d", len(s.Space()))
	}
}

func TestInternAndValidateRecord(t *testing.T) {
	s := testSchema(t)
	r, err := s.InternRecord(
		[][]string{{"Europe", "Germany", "C1"}, {"BrandA", "P1"}},
		[]float64{19.99, 3},
	)
	if err != nil {
		t.Fatalf("InternRecord: %v", err)
	}
	if err := s.ValidateRecord(r); err != nil {
		t.Errorf("ValidateRecord: %v", err)
	}
	// Re-interning the same paths yields identical coordinates.
	r2, _ := s.InternRecord(
		[][]string{{"Europe", "Germany", "C1"}, {"BrandA", "P1"}},
		[]float64{5, 1},
	)
	if r.Coords[0] != r2.Coords[0] || r.Coords[1] != r2.Coords[1] {
		t.Error("re-interning changed coordinates")
	}

	if _, err := s.InternRecord([][]string{{"Europe", "Germany", "C1"}}, []float64{1, 2}); err == nil {
		t.Error("wrong path arity should fail")
	}
	if _, err := s.InternRecord(
		[][]string{{"Europe", "Germany", "C1"}, {"BrandA", "P1"}}, []float64{1}); err == nil {
		t.Error("wrong measure arity should fail")
	}
	if _, err := s.InternRecord(
		[][]string{{"Europe", "C1"}, {"BrandA", "P1"}}, []float64{1, 2}); err == nil {
		t.Error("short dimension path should fail")
	}

	bad := r.Clone()
	bad.Coords[0] = hierarchy.MakeID(1, 0) // nation-level, not leaf
	if err := s.ValidateRecord(bad); err == nil {
		t.Error("non-leaf coordinate should fail validation")
	}
	bad2 := r.Clone()
	bad2.Coords[1] = hierarchy.MakeID(0, 4040) // unregistered leaf
	if err := s.ValidateRecord(bad2); err == nil {
		t.Error("unregistered coordinate should fail validation")
	}
	if err := s.ValidateRecord(Record{}); err == nil {
		t.Error("empty record should fail validation")
	}
}

func TestRecordClone(t *testing.T) {
	s := testSchema(t)
	r, _ := s.InternRecord([][]string{{"Europe", "Germany", "C1"}, {"BrandA", "P1"}}, []float64{1, 2})
	c := r.Clone()
	c.Coords[0] = hierarchy.MakeID(2, 12345)
	c.Measures[0] = 99
	if r.Coords[0] == c.Coords[0] || r.Measures[0] == 99 {
		t.Error("Clone shares backing arrays")
	}
}

func TestOpStringParse(t *testing.T) {
	for _, op := range []Op{Sum, Count, Avg, Min, Max} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%s) = %v, %v", op, got, err)
		}
	}
	if _, err := ParseOp("MEDIAN"); err == nil {
		t.Error("ParseOp(MEDIAN) should fail")
	}
	if Op(42).String() == "" {
		t.Error("unknown op must still render")
	}
}

func TestAggBasics(t *testing.T) {
	var a Agg
	if !a.IsEmpty() {
		t.Error("zero Agg must be empty")
	}
	if a.Value(Sum) != 0 || a.Value(Count) != 0 {
		t.Error("empty SUM/COUNT must be 0")
	}
	if !math.IsNaN(a.Value(Avg)) {
		t.Error("empty AVG must be NaN")
	}
	if !math.IsInf(a.Value(Min), 1) || !math.IsInf(a.Value(Max), -1) {
		t.Error("empty MIN/MAX must be ±Inf")
	}
	if !math.IsNaN(a.Value(Op(77))) {
		t.Error("unknown op must be NaN")
	}

	a.Add(10)
	a.Add(-5)
	a.Add(7)
	if a.Value(Sum) != 12 || a.Value(Count) != 3 || a.Value(Min) != -5 || a.Value(Max) != 10 {
		t.Errorf("agg = %+v", a)
	}
	if a.Value(Avg) != 4 {
		t.Errorf("avg = %g", a.Value(Avg))
	}
}

func TestAggMergeMatchesAdd(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for i, x := range xs {
			// Keep inputs finite and small enough that no intermediate
			// sum can overflow regardless of association order.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = float64(i)
			}
			xs[i] = math.Mod(x, 1e12)
		}
		var whole Agg
		for _, x := range xs {
			whole.Add(x)
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var left, right Agg
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		// Sum association order differs between the two folds, so compare
		// it with a relative tolerance; the rest must match exactly.
		sumClose := math.Abs(left.Sum-whole.Sum) <= 1e-9*math.Max(math.Abs(left.Sum), math.Abs(whole.Sum))+1e-12
		return sumClose && left.Count == whole.Count && left.Min == whole.Min && left.Max == whole.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAggMergeEmptyIdentity(t *testing.T) {
	a := AggOf(3)
	a.Add(9)
	before := a
	a.Merge(Agg{})
	if a != before {
		t.Error("merging the empty aggregate must be identity")
	}
	var e Agg
	e.Merge(before)
	if e != before {
		t.Error("merging into empty must copy")
	}
}

func TestAggUnmerge(t *testing.T) {
	var a Agg
	for _, x := range []float64{4, 8, 15, 16, 23, 42} {
		a.Add(x)
	}
	b := AggOf(15)
	b.Add(16)
	exact := a.Unmerge(b)
	if exact {
		t.Error("removing records cannot keep Min/Max exact")
	}
	if a.Sum != 4+8+23+42 || a.Count != 4 {
		t.Errorf("after unmerge: %+v", a)
	}
	// Removing everything yields the canonical empty aggregate.
	var c Agg
	c.Add(1)
	c.Unmerge(AggOf(1))
	if !c.IsEmpty() || c != (Agg{}) {
		t.Errorf("full unmerge = %+v", c)
	}
	// Unmerging the empty aggregate keeps everything exact.
	d := AggOf(2)
	if !d.Unmerge(Agg{}) {
		t.Error("unmerging empty must be exact")
	}
}

func TestAggVector(t *testing.T) {
	v := NewAggVector(2)
	v.AddRecord([]float64{1, 10})
	v.AddRecord([]float64{2, 20})
	w := AggOfRecord([]float64{3, 30})
	v.Merge(w)
	if v[0].Value(Sum) != 6 || v[1].Value(Sum) != 60 {
		t.Errorf("vector sums = %g, %g", v[0].Value(Sum), v[1].Value(Sum))
	}
	if v[0].Value(Count) != 3 {
		t.Errorf("count = %g", v[0].Value(Count))
	}
	c := v.Clone()
	if !c.Equal(v) {
		t.Error("clone must equal")
	}
	c[0].Add(1)
	if c.Equal(v) {
		t.Error("clone must not alias")
	}
	if v.Equal(v[:1]) {
		t.Error("different arity must not be equal")
	}
}

func TestAggRandomizedMergeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 500)
	var want Agg
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
		want.Add(xs[i])
	}
	// Fold in a random binary-tree order and compare against sequential.
	aggs := make([]Agg, len(xs))
	for i, x := range xs {
		aggs[i] = AggOf(x)
	}
	for len(aggs) > 1 {
		i := rng.Intn(len(aggs) - 1)
		aggs[i].Merge(aggs[i+1])
		aggs = append(aggs[:i+1], aggs[i+2:]...)
	}
	got := aggs[0]
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("tree merge = %+v, want %+v", got, want)
	}
	if math.Abs(got.Sum-want.Sum) > 1e-6*math.Abs(want.Sum) {
		t.Fatalf("tree merge sum = %g, want %g", got.Sum, want.Sum)
	}
}
