package cube

import (
	"fmt"
	"math"
)

// Op is an aggregation operator applicable to a measure in a range query
// (§1: "applies a given aggregation operator to the set of selected cells").
type Op int

// Supported aggregation operators.
const (
	Sum Op = iota
	Count
	Avg
	Min
	Max
)

// String names the operator.
func (op Op) String() string {
	switch op {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// ParseOp parses an operator name (case-sensitive, as printed by String).
func ParseOp(s string) (Op, error) {
	switch s {
	case "SUM":
		return Sum, nil
	case "COUNT":
		return Count, nil
	case "AVG":
		return Avg, nil
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	}
	return 0, fmt.Errorf("cube: unknown aggregation operator %q", s)
}

// Agg is the materialized aggregate of one measure over a set of records.
// It carries enough state (sum, count, min, max) to answer every supported
// Op, which is what the DC-tree stores next to each directory MDS.
//
// The zero Agg is the aggregate of the empty set.
type Agg struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

// AggOf returns the aggregate of a single measure value.
func AggOf(x float64) Agg {
	return Agg{Sum: x, Count: 1, Min: x, Max: x}
}

// IsEmpty reports whether the aggregate covers no records.
func (a Agg) IsEmpty() bool { return a.Count == 0 }

// Add folds one more measure value into the aggregate.
func (a *Agg) Add(x float64) {
	if a.Count == 0 {
		*a = AggOf(x)
		return
	}
	a.Sum += x
	a.Count++
	if x < a.Min {
		a.Min = x
	}
	if x > a.Max {
		a.Max = x
	}
}

// Merge folds another aggregate into this one.
func (a *Agg) Merge(b Agg) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	a.Sum += b.Sum
	a.Count += b.Count
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
}

// Unmerge removes a previously merged aggregate's sum and count. Min and
// Max are NOT maintainable under removal; callers that delete records must
// recompute aggregates bottom-up (the DC-tree does so on its delete path).
// Unmerge exists for the cheap sum/count fast path and reports whether the
// result still has exact Min/Max (only when nothing was removed or the
// result is empty).
func (a *Agg) Unmerge(b Agg) (minMaxExact bool) {
	a.Sum -= b.Sum
	a.Count -= b.Count
	if a.Count <= 0 {
		*a = Agg{}
		return true
	}
	return b.Count == 0
}

// Value extracts the operator's result from the aggregate. For the empty
// aggregate Sum and Count are 0, Avg is NaN, Min is +Inf and Max is -Inf —
// the conventional identity elements.
func (a Agg) Value(op Op) float64 {
	switch op {
	case Sum:
		return a.Sum
	case Count:
		return float64(a.Count)
	case Avg:
		if a.Count == 0 {
			return math.NaN()
		}
		return a.Sum / float64(a.Count)
	case Min:
		if a.Count == 0 {
			return math.Inf(1)
		}
		return a.Min
	case Max:
		if a.Count == 0 {
			return math.Inf(-1)
		}
		return a.Max
	default:
		return math.NaN()
	}
}

// AggVector is one Agg per measure of a schema.
type AggVector []Agg

// NewAggVector returns the empty aggregate vector for m measures.
func NewAggVector(m int) AggVector { return make(AggVector, m) }

// AggOfRecord returns the aggregate vector of a single record.
func AggOfRecord(measures []float64) AggVector {
	v := make(AggVector, len(measures))
	for j, x := range measures {
		v[j] = AggOf(x)
	}
	return v
}

// Merge folds another vector into this one; the arities must match.
func (v AggVector) Merge(w AggVector) {
	for j := range v {
		v[j].Merge(w[j])
	}
}

// AddRecord folds one record's measures into the vector.
func (v AggVector) AddRecord(measures []float64) {
	for j := range v {
		v[j].Add(measures[j])
	}
}

// Clone returns a copy of the vector.
func (v AggVector) Clone() AggVector { return append(AggVector(nil), v...) }

// Equal reports exact equality of two vectors.
func (v AggVector) Equal(w AggVector) bool {
	if len(v) != len(w) {
		return false
	}
	for j := range v {
		if v[j] != w[j] {
			return false
		}
	}
	return true
}
