package dctree_test

import (
	"fmt"
	"log"

	dctree "github.com/dcindex/dctree"
)

// Example shows the complete life of a DC-tree: declare a cube, insert
// records one at a time, and answer hierarchy-level range queries.
func Example() {
	customer, err := dctree.NewHierarchy("Customer", "Customer", "Nation", "Region")
	if err != nil {
		log.Fatal(err)
	}
	product, err := dctree.NewHierarchy("Product", "Product", "Category")
	if err != nil {
		log.Fatal(err)
	}
	schema, err := dctree.NewSchema([]*dctree.Hierarchy{customer, product}, "Revenue")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := dctree.NewInMemory(schema)
	if err != nil {
		log.Fatal(err)
	}

	type sale struct {
		cust, nation, region string
		category, product    string
		revenue              float64
	}
	for _, s := range []sale{
		{"C1", "GERMANY", "EUROPE", "Electronics", "TV", 999},
		{"C2", "FRANCE", "EUROPE", "Food", "Wine", 59},
		{"C3", "JAPAN", "ASIA", "Electronics", "Camera", 450},
	} {
		rec, err := schema.InternRecord([][]string{
			{s.region, s.nation, s.cust},
			{s.category, s.product},
		}, []float64{s.revenue})
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.Insert(rec); err != nil {
			log.Fatal(err)
		}
	}

	q, err := dctree.NewQuery(schema).
		Where("Customer", "Region", "EUROPE").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	sum, err := tree.RangeQuery(q, dctree.Sum, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EUROPE revenue: %.0f\n", sum)
	// Output: EUROPE revenue: 1058
}

// ExampleQueryBuilder demonstrates multi-dimension constraints at mixed
// hierarchy levels.
func ExampleQueryBuilder() {
	region, _ := dctree.NewHierarchy("Store", "Store", "Region")
	timeDim, _ := dctree.NewHierarchy("Time", "Day", "Month")
	schema, _ := dctree.NewSchema([]*dctree.Hierarchy{region, timeDim}, "Sales")
	tree, _ := dctree.NewInMemory(schema)

	for i, s := range []struct {
		region, month string
		sales         float64
	}{
		{"North", "Jan", 10}, {"North", "Feb", 20}, {"South", "Jan", 40},
	} {
		rec, _ := schema.InternRecord([][]string{
			{s.region, fmt.Sprintf("Store#%d", i)},
			{s.month, fmt.Sprintf("%s-%02d", s.month, i)},
		}, []float64{s.sales})
		tree.Insert(rec)
	}

	q, err := dctree.NewQuery(schema).
		Where("Store", "Region", "North").
		Where("Time", "Month", "Jan", "Feb").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	count, _ := tree.RangeQuery(q, dctree.Count, 0)
	sum, _ := tree.RangeQuery(q, dctree.Sum, 0)
	fmt.Printf("%d sales totalling %.0f\n", int(count), sum)
	// Output: 2 sales totalling 30
}

// ExampleTree_Delete shows that deletion keeps the materialized
// aggregates exact — the "fully dynamic" promise.
func ExampleTree_Delete() {
	d, _ := dctree.NewHierarchy("D", "Leaf", "Top")
	schema, _ := dctree.NewSchema([]*dctree.Hierarchy{d}, "M")
	tree, _ := dctree.NewInMemory(schema)
	a, _ := schema.InternRecord([][]string{{"T", "x"}}, []float64{5})
	b, _ := schema.InternRecord([][]string{{"T", "y"}}, []float64{7})
	tree.Insert(a)
	tree.Insert(b)
	tree.Delete(a)
	sum, _ := tree.RangeQuery(dctree.QueryAll(schema), dctree.Sum, 0)
	fmt.Println(sum)
	// Output: 7
}
