package dctree

import (
	"context"
	"errors"
	"testing"
)

// dedupIDs must preserve first-seen order for ANY input ordering and drop
// every duplicate, not just adjacent ones — unsorted inputs previously
// leaked duplicates into built MDS predicates.
func TestDedupIDsFirstSeenOrder(t *testing.T) {
	cases := []struct {
		name string
		in   []ID
		want []ID
	}{
		{"empty", nil, nil},
		{"sorted adjacent dups", []ID{1, 1, 2, 3, 3, 3}, []ID{1, 2, 3}},
		{"unsorted non-adjacent dups", []ID{5, 2, 5, 9, 2, 5}, []ID{5, 2, 9}},
		{"all same", []ID{7, 7, 7}, []ID{7}},
		{"no dups keeps order", []ID{9, 3, 1}, []ID{9, 3, 1}},
	}
	for _, tc := range cases {
		got := dedupIDs(append([]ID(nil), tc.in...))
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: got %v, want %v", tc.name, got, tc.want)
			}
		}
	}
}

func builderSchema(t testing.TB) *Schema {
	t.Helper()
	cust, err := NewHierarchy("Customer", "Customer", "Nation", "Region")
	if err != nil {
		t.Fatal(err)
	}
	prod, err := NewHierarchy("Product", "Product", "Category")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema([]*Hierarchy{cust, prod}, "Revenue")
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// TestBuildRequestAsOf drives the builder's time-travel path end to end:
// a request built with AsOf answers from the snapshot while the live tree
// moves on, and the versioned constructor surface (Open + options) is what
// sets the whole scene up.
func TestBuildRequestAsOf(t *testing.T) {
	schema := builderSchema(t)
	tree, err := Open(NewMemStore(DefaultConfig().BlockSize), WithSchema(schema))
	if err != nil {
		t.Fatal(err)
	}
	insert := func(region, nation, cust, cat, prod string, rev float64) Record {
		rec, err := schema.InternRecord(
			[][]string{{region, nation, cust}, {cat, prod}}, []float64{rev})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(rec); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	insert("EUROPE", "GERMANY", "C1", "Electronics", "TV", 100)
	insert("EUROPE", "FRANCE", "C2", "Electronics", "VCR", 200)

	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	insert("EUROPE", "GERMANY", "C3", "Food", "Wine", 400)

	req, err := NewQuery(schema).
		Where("Customer", "Region", "EUROPE").
		AsOf(v).
		BuildRequest()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tree.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Agg.Value(Sum); got != 300 {
		t.Fatalf("as-of sum = %v, want 300 (snapshot predates the 400)", got)
	}

	// The same builder without AsOf sees the live tree.
	liveReq, err := NewQuery(schema).Where("Customer", "Region", "EUROPE").BuildRequest()
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := tree.Execute(context.Background(), liveReq)
	if err != nil {
		t.Fatal(err)
	}
	if got := liveRes.Agg.Value(Sum); got != 700 {
		t.Fatalf("live sum = %v, want 700", got)
	}

	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Execute(context.Background(), req); !errors.Is(err, ErrVersionReleased) {
		t.Fatalf("released version: got %v, want ErrVersionReleased", err)
	}
}
