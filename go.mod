module github.com/dcindex/dctree

go 1.22
