// Package dctree is the public API of this DC-tree implementation — a
// fully dynamic index structure for data warehouses modeled as data cubes,
// after Ester, Kohlhammer and Kriegel, "The DC-Tree: A Fully Dynamic Index
// Structure for Data Warehouses" (ICDE 2000).
//
// A DC-tree indexes the data records of a data cube whose dimensions carry
// concept hierarchies (e.g. ALL > Region > Nation > Customer). Unlike
// bitmap indices or bulk-loaded cube materializations, the DC-tree is kept
// consistent by single-record Insert and Delete calls, so the warehouse
// never needs an update window; and unlike R-tree-family indexes over an
// artificial total ordering, it describes directory regions by minimum
// describing sequences (sets of attribute values at one hierarchy level
// per dimension) and materializes aggregated measure values in every
// directory entry, so range queries can be answered without descending
// into fully covered subtrees.
//
// # Quick start
//
//	customer, _ := dctree.NewHierarchy("Customer", "Customer", "Nation", "Region")
//	product, _ := dctree.NewHierarchy("Product", "Product", "Category")
//	schema, _ := dctree.NewSchema([]*dctree.Hierarchy{customer, product}, "Revenue")
//	tree, _ := dctree.Open(dctree.NewMemStore(4096), dctree.WithSchema(schema))
//
//	rec, _ := schema.InternRecord([][]string{
//	    {"EUROPE", "GERMANY", "Customer#1"},
//	    {"Electronics", "TV#42"},
//	}, []float64{1999.90})
//	_ = tree.Insert(rec)
//
//	q, _ := dctree.NewQuery(schema).
//	    Where("Customer", "Region", "EUROPE").
//	    Build()
//	res, _ := tree.Execute(ctx, dctree.QueryRequest{Query: q})
//	total := res.Agg.Value(dctree.Sum)
//
// # Constructing and opening trees
//
// Open is the single constructor: it creates a tree when WithSchema is
// given and reopens a persisted one otherwise, on any Store (NewMemStore,
// OpenFileStore), optionally WAL-backed with WithWAL. The former
// constructor matrix (New, NewInMemory, NewDurable, NewDurableOpts,
// OpenDurable, OpenDurableOpts) remains as thin deprecated wrappers.
//
// # Durability
//
// A tree opened without WithWAL holds updates in memory until Flush. For
// crash safety pass WithWAL: every acknowledged Insert and Delete is then
// written ahead to a log and group-committed, and reopening with the same
// WithWAL prefix replays the log tail after a crash. On a durable tree,
// Flush is a checkpoint that compacts the log — NOT the durability
// boundary; mutations are safe as soon as the call returns. See
// DURABILITY.md for the protocol.
//
// # Versioned reads
//
// Tree.Snapshot captures a cheap MVCC version of the whole index and
// returns a Version handle; queries pinned to it with QueryRequest.AsOf
// (or QueryBuilder.AsOf) run entirely without the tree lock and keep
// answering from the captured state while inserts, deletes and
// checkpoints proceed underneath. Release versions when done — they pin
// storage extents. On WAL-backed trees versions survive crashes until a
// checkpoint supersedes their log record. See DESIGN.md.
//
// # Replication
//
// A WAL-backed tree's log can be shipped to warm standbys that replay it
// into read-only replicas and can be promoted in place when the primary
// dies. The machinery lives in the internal repl package and is operated
// through the dctool replica, promote and ship subcommands; the protocol
// is specified in REPLICATION.md and the runbooks in OPERATIONS.md.
//
// The subpackages under internal implement the machinery: concept
// hierarchies and dictionaries, MDS algebra, the tree itself, the paged
// storage substrate, and the X-tree / sequential-scan baselines used by
// the paper's experiments.
package dctree

import (
	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/obs"
	"github.com/dcindex/dctree/internal/storage"
)

// Re-exported core types. The aliases keep one importable surface while
// the implementation lives in internal packages.
type (
	// Tree is the DC-tree index. Safe for concurrent use: queries run
	// under a read lock while single-record updates take the write lock.
	Tree = core.Tree
	// Config carries the tree's tuning knobs; see DefaultConfig.
	Config = core.Config
	// QueryStats reports the work a range query performed.
	QueryStats = core.QueryStats
	// QueryRequest describes one range query for Tree.Execute, the
	// context-aware entry point every other query method delegates to.
	QueryRequest = core.QueryRequest
	// QueryResult is the outcome of Tree.Execute.
	QueryResult = core.QueryResult
	// Metrics is the typed snapshot returned by Tree.Metrics; its
	// WriteProm method renders Prometheus text exposition format.
	Metrics = core.Metrics
	// SlowQueryEvent is delivered to the hook installed with
	// Tree.SetSlowQueryHook for queries over the latency threshold.
	SlowQueryEvent = core.SlowQueryEvent
	// HistogramSnapshot is a point-in-time view of a latency histogram
	// (log2 buckets), as embedded in Metrics.
	HistogramSnapshot = obs.HistogramSnapshot
	// LevelStat aggregates node statistics for one tree level.
	LevelStat = core.LevelStat
	// VerifyReport summarizes Tree.VerifyExtents — a physical scan of
	// every extent the tree references, checking stored checksums.
	VerifyReport = core.VerifyReport
	// VerifyError is one damaged extent in a VerifyReport.
	VerifyError = core.VerifyError
	// VerifyOpts configures Tree.VerifyExtentsOpts; the zero value matches
	// VerifyExtents.
	VerifyOpts = core.VerifyOpts
	// Version is one pinned MVCC snapshot from Tree.Snapshot; pass it in
	// QueryRequest.AsOf for lock-free time-travel queries and Release it
	// when done.
	Version = core.Version
	// VersionInfo describes one live version (Tree.Versions).
	VersionInfo = core.VersionInfo
	// VersionRetention is the automatic version-pruning policy
	// (Config.VersionRetention): keep the newest KeepLast versions and/or
	// release versions older than MaxAge.
	VersionRetention = core.VersionRetention

	// Schema declares a data cube: dimensions with concept hierarchies
	// plus measure names.
	Schema = cube.Schema
	// Record is one data record: leaf-level coordinates and measures.
	Record = cube.Record
	// Agg is the materialized aggregate (sum, count, min, max) of a
	// measure over a set of records.
	Agg = cube.Agg
	// Op selects the aggregation operator of a range query.
	Op = cube.Op

	// Hierarchy is one dimension's concept hierarchy and dictionary.
	Hierarchy = hierarchy.Hierarchy
	// ID is an interned attribute value (4-bit level tag + 28-bit code).
	ID = hierarchy.ID

	// MDS is a minimum describing sequence: one value set per dimension,
	// each at one hierarchy level. Queries are expressed as MDSs.
	MDS = mds.MDS
	// DimSet is one dimension's entry of an MDS.
	DimSet = mds.DimSet

	// Store is the block-extent storage abstraction underneath a tree.
	Store = storage.Store
	// StoreStats counts logical I/O at the store interface.
	StoreStats = storage.Stats
)

// Aggregation operators for RangeQuery.
const (
	Sum   = cube.Sum
	Count = cube.Count
	Avg   = cube.Avg
	Min   = cube.Min
	Max   = cube.Max
)

// DefaultConfig returns the configuration used throughout the paper
// reproduction (4 KiB blocks, 24/48 directory/leaf capacity, 35 % minimum
// fill, 20 % maximum split overlap).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewHierarchy declares a dimension's concept hierarchy. Level names are
// ordered from the leaf upward:
//
//	NewHierarchy("Customer", "Customer", "Nation", "Region")
func NewHierarchy(dimension string, levelNames ...string) (*Hierarchy, error) {
	return hierarchy.New(dimension, levelNames...)
}

// NewSchema declares a data cube from dimension hierarchies and measures.
func NewSchema(dims []*Hierarchy, measures ...string) (*Schema, error) {
	return cube.NewSchema(dims, measures...)
}

// Option configures Open. Options compose: WithSchema selects creation
// over reopening, WithConfig tunes a created tree, WithWAL adds the
// durable write path.
type Option func(*openOptions)

// openOptions accumulates the Open configuration.
type openOptions struct {
	schema    *Schema
	cfg       Config
	cfgSet    bool
	walPrefix string
	wopts     WALOptions
	walSet    bool
}

// WithSchema makes Open CREATE an empty tree for the given cube schema on
// the store (whose metadata area the tree takes over). Without it, Open
// REOPENS the tree persisted on the store.
func WithSchema(schema *Schema) Option {
	return func(o *openOptions) { o.schema = schema }
}

// WithConfig sets the configuration of a tree created with WithSchema;
// the default is DefaultConfig. When reopening an existing tree the
// persisted configuration governs and WithConfig is ignored.
func WithConfig(cfg Config) Option {
	return func(o *openOptions) { o.cfg = cfg; o.cfgSet = true }
}

// WithWAL makes the tree durable: every acknowledged Insert and Delete is
// written ahead to the log at prefix (segment files <prefix>.<n>.wal) and
// group-committed before the call returns. Creating (WithSchema) requires
// an empty log; reopening replays the log tail past the last checkpoint —
// the crash-recovery path. Pass the same write-side WALOptions (Compress,
// RecyclePool) the tree was created with to keep them in effect; reading
// a log never depends on them. Close the tree with Tree.Close to
// checkpoint and release the log.
func WithWAL(prefix string, wopts WALOptions) Option {
	return func(o *openOptions) { o.walPrefix = prefix; o.wopts = wopts; o.walSet = true }
}

// Open is the single constructor for DC-trees: it creates an empty tree
// when WithSchema is given and reopens the tree persisted on the store
// otherwise, in-memory-durable by default and WAL-backed with WithWAL.
//
//	tree, err := dctree.Open(store, dctree.WithSchema(schema))            // create
//	tree, err := dctree.Open(store)                                       // reopen
//	tree, err := dctree.Open(store, dctree.WithSchema(schema),
//	    dctree.WithWAL("idx", dctree.WALOptions{}))                       // create, durable
//	tree, err := dctree.Open(store, dctree.WithWAL("idx", dctree.WALOptions{})) // recover
func Open(store Store, opts ...Option) (*Tree, error) {
	o := openOptions{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	switch {
	case o.schema != nil && o.walSet:
		return core.NewDurableOpts(store, o.schema, o.cfg, o.walPrefix, o.wopts)
	case o.schema != nil:
		return core.New(store, o.schema, o.cfg)
	case o.walSet:
		return core.OpenDurableOpts(store, o.walPrefix, o.wopts)
	default:
		return core.Open(store)
	}
}

// New creates an empty DC-tree on an explicit store.
//
// Deprecated: use Open(store, WithSchema(schema), WithConfig(cfg)).
func New(store Store, schema *Schema, cfg Config) (*Tree, error) {
	return Open(store, WithSchema(schema), WithConfig(cfg))
}

// NewInMemory creates an empty DC-tree on an in-memory store with the
// default configuration — the setup of the paper's experiments.
//
// Deprecated: use Open(NewMemStore(DefaultConfig().BlockSize),
// WithSchema(schema)).
func NewInMemory(schema *Schema) (*Tree, error) {
	return Open(storage.NewMemStore(DefaultConfig().BlockSize), WithSchema(schema))
}

// NewDurable creates an empty WAL-backed DC-tree.
//
// Deprecated: use Open(store, WithSchema(schema), WithConfig(cfg),
// WithWAL(walPrefix, WALOptions{})).
func NewDurable(store Store, schema *Schema, cfg Config, walPrefix string) (*Tree, error) {
	return Open(store, WithSchema(schema), WithConfig(cfg), WithWAL(walPrefix, WALOptions{}))
}

// NewDurableOpts is NewDurable with explicit log-file options.
//
// Deprecated: use Open(store, WithSchema(schema), WithConfig(cfg),
// WithWAL(walPrefix, wopts)).
func NewDurableOpts(store Store, schema *Schema, cfg Config, walPrefix string, wopts WALOptions) (*Tree, error) {
	return Open(store, WithSchema(schema), WithConfig(cfg), WithWAL(walPrefix, wopts))
}

// OpenDurable reopens a WAL-backed DC-tree, replaying any log records past
// the last checkpoint — the crash-recovery path.
//
// Deprecated: use Open(store, WithWAL(walPrefix, WALOptions{})).
func OpenDurable(store Store, walPrefix string) (*Tree, error) {
	return Open(store, WithWAL(walPrefix, WALOptions{}))
}

// OpenDurableOpts is OpenDurable with explicit log-file options.
//
// Deprecated: use Open(store, WithWAL(walPrefix, wopts)).
func OpenDurableOpts(store Store, walPrefix string, wopts WALOptions) (*Tree, error) {
	return Open(store, WithWAL(walPrefix, wopts))
}

// WALStats is the write-ahead log's activity snapshot (Tree.WALStats).
type WALStats = storage.WALStats

// WALOptions tunes the write-ahead log's segment files: SegmentBytes
// (rotation size), Compress (store frames compressed when that shrinks
// them), RecyclePool (retired segments kept for reuse; 0 = default of 4,
// negative disables), RetainSegments (extra sealed segments kept below
// the retention floor for log-shipping followers — see REPLICATION.md),
// and SyncDelay (modeled device latency, used by the benchmarks).
type WALOptions = storage.WALOptions

// ErrChecksum reports a stored page whose checksum no longer matches its
// contents — on-disk corruption. File stores checksum every extent, the
// metadata and the freelist; reads fail closed with this error instead of
// decoding damaged bytes.
var ErrChecksum = storage.ErrChecksum

// ErrVersionReleased reports a query against a released Version handle.
var ErrVersionReleased = core.ErrVersionReleased

// ErrVersionForeign reports a Version used with a tree other than the one
// that created it.
var ErrVersionForeign = core.ErrVersionForeign

// NewMemStore creates an in-memory block store with full I/O accounting.
func NewMemStore(blockSize int) Store { return storage.NewMemStore(blockSize) }

// OpenFileStore opens (or creates) a file-backed block store with an LRU
// buffer pool of poolBytes (≤ 0 selects a 4 MiB default).
func OpenFileStore(path string, blockSize, poolBytes int) (Store, error) {
	return storage.OpenPagedStore(path, blockSize, poolBytes)
}

// AllDim is the unconstrained query entry for one dimension ("every
// value").
func AllDim() DimSet { return mds.AllDim() }

// QueryAll returns the query selecting the whole cube.
func QueryAll(schema *Schema) MDS { return mds.Top(schema.Dims()) }
