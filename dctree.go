// Package dctree is the public API of this DC-tree implementation — a
// fully dynamic index structure for data warehouses modeled as data cubes,
// after Ester, Kohlhammer and Kriegel, "The DC-Tree: A Fully Dynamic Index
// Structure for Data Warehouses" (ICDE 2000).
//
// A DC-tree indexes the data records of a data cube whose dimensions carry
// concept hierarchies (e.g. ALL > Region > Nation > Customer). Unlike
// bitmap indices or bulk-loaded cube materializations, the DC-tree is kept
// consistent by single-record Insert and Delete calls, so the warehouse
// never needs an update window; and unlike R-tree-family indexes over an
// artificial total ordering, it describes directory regions by minimum
// describing sequences (sets of attribute values at one hierarchy level
// per dimension) and materializes aggregated measure values in every
// directory entry, so range queries can be answered without descending
// into fully covered subtrees.
//
// # Quick start
//
//	customer, _ := dctree.NewHierarchy("Customer", "Customer", "Nation", "Region")
//	product, _ := dctree.NewHierarchy("Product", "Product", "Category")
//	schema, _ := dctree.NewSchema([]*dctree.Hierarchy{customer, product}, "Revenue")
//	tree, _ := dctree.NewInMemory(schema)
//
//	rec, _ := schema.InternRecord([][]string{
//	    {"EUROPE", "GERMANY", "Customer#1"},
//	    {"Electronics", "TV#42"},
//	}, []float64{1999.90})
//	_ = tree.Insert(rec)
//
//	q, _ := dctree.NewQuery(schema).
//	    Where("Customer", "Region", "EUROPE").
//	    Build()
//	total, _ := tree.RangeQuery(q, dctree.Sum, 0)
//
// # Durability
//
// A tree from New/NewInMemory/Open holds updates in memory until Flush.
// For crash safety use NewDurable/OpenDurable: every acknowledged Insert
// and Delete is then written ahead to a log and group-committed, and
// OpenDurable replays the log tail after a crash. On a durable tree,
// Flush is a checkpoint that compacts the log — NOT the durability
// boundary; mutations are safe as soon as the call returns. See
// DURABILITY.md for the protocol.
//
// The subpackages under internal implement the machinery: concept
// hierarchies and dictionaries, MDS algebra, the tree itself, the paged
// storage substrate, and the X-tree / sequential-scan baselines used by
// the paper's experiments.
package dctree

import (
	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/obs"
	"github.com/dcindex/dctree/internal/storage"
)

// Re-exported core types. The aliases keep one importable surface while
// the implementation lives in internal packages.
type (
	// Tree is the DC-tree index. Safe for concurrent use: queries run
	// under a read lock while single-record updates take the write lock.
	Tree = core.Tree
	// Config carries the tree's tuning knobs; see DefaultConfig.
	Config = core.Config
	// QueryStats reports the work a range query performed.
	QueryStats = core.QueryStats
	// QueryRequest describes one range query for Tree.Execute, the
	// context-aware entry point every other query method delegates to.
	QueryRequest = core.QueryRequest
	// QueryResult is the outcome of Tree.Execute.
	QueryResult = core.QueryResult
	// Metrics is the typed snapshot returned by Tree.Metrics; its
	// WriteProm method renders Prometheus text exposition format.
	Metrics = core.Metrics
	// SlowQueryEvent is delivered to the hook installed with
	// Tree.SetSlowQueryHook for queries over the latency threshold.
	SlowQueryEvent = core.SlowQueryEvent
	// HistogramSnapshot is a point-in-time view of a latency histogram
	// (log2 buckets), as embedded in Metrics.
	HistogramSnapshot = obs.HistogramSnapshot
	// LevelStat aggregates node statistics for one tree level.
	LevelStat = core.LevelStat
	// VerifyReport summarizes Tree.VerifyExtents — a physical scan of
	// every extent the tree references, checking stored checksums.
	VerifyReport = core.VerifyReport
	// VerifyError is one damaged extent in a VerifyReport.
	VerifyError = core.VerifyError

	// Schema declares a data cube: dimensions with concept hierarchies
	// plus measure names.
	Schema = cube.Schema
	// Record is one data record: leaf-level coordinates and measures.
	Record = cube.Record
	// Agg is the materialized aggregate (sum, count, min, max) of a
	// measure over a set of records.
	Agg = cube.Agg
	// Op selects the aggregation operator of a range query.
	Op = cube.Op

	// Hierarchy is one dimension's concept hierarchy and dictionary.
	Hierarchy = hierarchy.Hierarchy
	// ID is an interned attribute value (4-bit level tag + 28-bit code).
	ID = hierarchy.ID

	// MDS is a minimum describing sequence: one value set per dimension,
	// each at one hierarchy level. Queries are expressed as MDSs.
	MDS = mds.MDS
	// DimSet is one dimension's entry of an MDS.
	DimSet = mds.DimSet

	// Store is the block-extent storage abstraction underneath a tree.
	Store = storage.Store
	// StoreStats counts logical I/O at the store interface.
	StoreStats = storage.Stats
)

// Aggregation operators for RangeQuery.
const (
	Sum   = cube.Sum
	Count = cube.Count
	Avg   = cube.Avg
	Min   = cube.Min
	Max   = cube.Max
)

// DefaultConfig returns the configuration used throughout the paper
// reproduction (4 KiB blocks, 24/48 directory/leaf capacity, 35 % minimum
// fill, 20 % maximum split overlap).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewHierarchy declares a dimension's concept hierarchy. Level names are
// ordered from the leaf upward:
//
//	NewHierarchy("Customer", "Customer", "Nation", "Region")
func NewHierarchy(dimension string, levelNames ...string) (*Hierarchy, error) {
	return hierarchy.New(dimension, levelNames...)
}

// NewSchema declares a data cube from dimension hierarchies and measures.
func NewSchema(dims []*Hierarchy, measures ...string) (*Schema, error) {
	return cube.NewSchema(dims, measures...)
}

// New creates an empty DC-tree on an explicit store (use NewMemStore or
// OpenFileStore).
func New(store Store, schema *Schema, cfg Config) (*Tree, error) {
	return core.New(store, schema, cfg)
}

// NewInMemory creates an empty DC-tree on an in-memory store with the
// default configuration — the setup of the paper's experiments.
func NewInMemory(schema *Schema) (*Tree, error) {
	cfg := DefaultConfig()
	return core.New(storage.NewMemStore(cfg.BlockSize), schema, cfg)
}

// Open reopens a DC-tree persisted by Tree.Flush from its store.
func Open(store Store) (*Tree, error) { return core.Open(store) }

// NewDurable creates an empty WAL-backed DC-tree: acknowledged mutations
// are durable (write-ahead logged and group-committed) before Insert or
// Delete returns. walPrefix names the log's segment files
// (<prefix>.<n>.wal); Config.CommitInterval and Config.CommitBytes tune
// the group commit. Close the tree with Tree.Close to checkpoint and
// release the log.
func NewDurable(store Store, schema *Schema, cfg Config, walPrefix string) (*Tree, error) {
	return core.NewDurable(store, schema, cfg, walPrefix)
}

// NewDurableOpts is NewDurable with explicit log-file options — segment
// size, payload compression, the retired-segment recycle pool, and the
// benchmarks' modeled sync delay.
func NewDurableOpts(store Store, schema *Schema, cfg Config, walPrefix string, wopts WALOptions) (*Tree, error) {
	return core.NewDurableOpts(store, schema, cfg, walPrefix, wopts)
}

// OpenDurable reopens a WAL-backed DC-tree, replaying any log records past
// the last checkpoint — the crash-recovery path.
func OpenDurable(store Store, walPrefix string) (*Tree, error) {
	return core.OpenDurable(store, walPrefix)
}

// OpenDurableOpts is OpenDurable with explicit log-file options; pass the
// same write-side options (Compress, RecyclePool) the tree was created
// with to keep them in effect — reading a log never depends on them.
func OpenDurableOpts(store Store, walPrefix string, wopts WALOptions) (*Tree, error) {
	return core.OpenDurableOpts(store, walPrefix, wopts)
}

// WALStats is the write-ahead log's activity snapshot (Tree.WALStats).
type WALStats = storage.WALStats

// WALOptions tunes the write-ahead log's segment files: SegmentBytes
// (rotation size), Compress (store frames compressed when that shrinks
// them), RecyclePool (retired segments kept for reuse; 0 = default of 4,
// negative disables), and SyncDelay (modeled device latency, used by the
// benchmarks).
type WALOptions = storage.WALOptions

// ErrChecksum reports a stored page whose checksum no longer matches its
// contents — on-disk corruption. File stores checksum every extent, the
// metadata and the freelist; reads fail closed with this error instead of
// decoding damaged bytes.
var ErrChecksum = storage.ErrChecksum

// NewMemStore creates an in-memory block store with full I/O accounting.
func NewMemStore(blockSize int) Store { return storage.NewMemStore(blockSize) }

// OpenFileStore opens (or creates) a file-backed block store with an LRU
// buffer pool of poolBytes (≤ 0 selects a 4 MiB default).
func OpenFileStore(path string, blockSize, poolBytes int) (Store, error) {
	return storage.OpenPagedStore(path, blockSize, poolBytes)
}

// AllDim is the unconstrained query entry for one dimension ("every
// value").
func AllDim() DimSet { return mds.AllDim() }

// QueryAll returns the query selecting the whole cube.
func QueryAll(schema *Schema) MDS { return mds.Top(schema.Dims()) }
