package dctree

import (
	"errors"
	"fmt"

	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// ErrBadQuerySpec reports an unbuildable query specification.
var ErrBadQuerySpec = errors.New("dctree: bad query specification")

// QueryBuilder assembles a range query MDS from attribute value names.
// Dimensions left unconstrained select all their values. Each dimension
// may be constrained at exactly one hierarchy level (the definition of a
// range_mds, §3.2).
type QueryBuilder struct {
	schema *Schema
	sets   map[int]DimSet
	asOf   *Version
	err    error
}

// NewQuery starts a query over the schema's cube.
func NewQuery(schema *Schema) *QueryBuilder {
	return &QueryBuilder{schema: schema, sets: make(map[int]DimSet)}
}

// Where constrains one dimension at one level to a set of value names.
// Value names are matched at the given level wherever they occur (a name
// that repeats under several parents, like a market segment per nation,
// selects all occurrences). Unknown names are an error at Build time.
//
//	NewQuery(schema).
//	    Where("Customer", "Region", "EUROPE", "ASIA").
//	    Where("Time", "Year", "1996")
func (b *QueryBuilder) Where(dimension, level string, values ...string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	d, err := b.schema.DimIndex(dimension)
	if err != nil {
		b.err = err
		return b
	}
	h, err := b.schema.Dim(d)
	if err != nil {
		b.err = err
		return b
	}
	lvl, err := h.LevelIndex(level)
	if err != nil {
		b.err = err
		return b
	}
	if len(values) == 0 {
		b.err = fmt.Errorf("%w: empty value list for %s.%s", ErrBadQuerySpec, dimension, level)
		return b
	}
	if _, dup := b.sets[d]; dup {
		b.err = fmt.Errorf("%w: dimension %s constrained twice", ErrBadQuerySpec, dimension)
		return b
	}
	var ids []ID
	for _, v := range values {
		found, err := h.FindByName(lvl, v)
		if err != nil {
			b.err = err
			return b
		}
		if len(found) == 0 {
			b.err = fmt.Errorf("%w: no value %q at level %s of %s", ErrBadQuerySpec, v, level, dimension)
			return b
		}
		ids = append(ids, found...)
	}
	hierarchy.SortIDs(ids)
	ids = dedupIDs(ids)
	b.sets[d] = DimSet{Level: lvl, IDs: ids}
	return b
}

// WhereIDs constrains one dimension to pre-resolved IDs (all at the same
// level). Useful when IDs come from a previous query or from the
// hierarchy API directly.
func (b *QueryBuilder) WhereIDs(dimension string, ids ...ID) *QueryBuilder {
	if b.err != nil {
		return b
	}
	d, err := b.schema.DimIndex(dimension)
	if err != nil {
		b.err = err
		return b
	}
	if len(ids) == 0 {
		b.err = fmt.Errorf("%w: empty ID list for %s", ErrBadQuerySpec, dimension)
		return b
	}
	if _, dup := b.sets[d]; dup {
		b.err = fmt.Errorf("%w: dimension %s constrained twice", ErrBadQuerySpec, dimension)
		return b
	}
	level := ids[0].Level()
	sorted := append([]ID(nil), ids...)
	hierarchy.SortIDs(sorted)
	sorted = dedupIDs(sorted)
	for _, id := range sorted {
		if id.Level() != level {
			b.err = fmt.Errorf("%w: mixed levels in %s constraint", ErrBadQuerySpec, dimension)
			return b
		}
	}
	b.sets[d] = DimSet{Level: level, IDs: sorted}
	return b
}

// AsOf pins the query to an MVCC version (Tree.Snapshot): the request
// built by BuildRequest resolves against the version's captured state,
// without the tree lock. A nil version queries the live tree.
func (b *QueryBuilder) AsOf(v *Version) *QueryBuilder {
	b.asOf = v
	return b
}

// BuildRequest assembles the query as a QueryRequest for Tree.Execute,
// carrying the AsOf version if one was set. Measure, AllMeasures,
// Parallel and CollectStats start at their zero values — set them on the
// returned request.
func (b *QueryBuilder) BuildRequest() (QueryRequest, error) {
	q, err := b.Build()
	if err != nil {
		return QueryRequest{}, err
	}
	return QueryRequest{Query: q, AsOf: b.asOf}, nil
}

// Build assembles the MDS, validating it against the schema.
func (b *QueryBuilder) Build() (MDS, error) {
	if b.err != nil {
		return nil, b.err
	}
	q := make(MDS, b.schema.Dims())
	for d := range q {
		if ds, ok := b.sets[d]; ok {
			q[d] = ds
		} else {
			q[d] = mds.AllDim()
		}
	}
	if err := q.Validate(b.schema.Space()); err != nil {
		return nil, err
	}
	return q, nil
}

// dedupIDs removes duplicate IDs in place, keeping the first occurrence
// of each in its original position. Correct for ANY input order — the old
// implementation only collapsed adjacent duplicates, so it silently left
// duplicates in unsorted input; first-seen order keeps the result
// deterministic for the caller's ordering, sorted or not.
func dedupIDs(ids []ID) []ID {
	seen := make(map[ID]struct{}, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
