// Command dcbench regenerates the figures of the DC-tree paper's
// evaluation (§5) on synthetic TPC-D data.
//
// Usage:
//
//	dcbench [flags]
//
//	-exp string     experiment to run: all, fig11a, fig11b, fig12a,
//	                fig12b, fig12c, fig12d, fig13, speedups, ablation
//	                (default "all")
//	-n string       comma-separated data-set sizes (default "10000,20000,30000";
//	                the paper uses 100000,200000,300000)
//	-queries int    random queries averaged per size (default 100)
//	-seed int       workload seed (default 1)
//	-verify         cross-check all systems' answers on every query
//	-csv            emit CSV instead of aligned tables
//	-workers-sweep  sweep parallel query worker counts (-sweep-workers,
//	                default 1,2,4,8) at the smallest size and print
//	                per-worker-count throughput JSON; the cold variant
//	                charges -cold-read-latency per node fault
//	-wal            benchmark durable-insert throughput (WAL group commit
//	                vs fsync per insert) and print JSON; tune with -wal-n,
//	                -wal-workers, -wal-interval
//	-snapshot-scan  benchmark insert tail latency during long concurrent
//	                scans (locked live scans vs MVCC snapshot scans) and
//	                print JSON; tune with -snapshot-n
//	-mmap           benchmark the cold read path (heap decode vs zero-copy
//	                flat views over the memory-mapped store file) and
//	                print JSON; tune with -mmap-n, -mmap-queries
//	-replica        benchmark log-shipping replication (primary overhead,
//	                follower lag, drain, promotion) and print JSON; tune
//	                with -replica-n, -replica-workers; add -sync for a
//	                synchronous-replication (quorum-acknowledged) run
//
// Example (the paper's full sweep — takes a while):
//
//	dcbench -exp all -n 100000,200000,300000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/dcindex/dctree/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig11a, fig11b, fig12a, fig12b, fig12c, fig12d, fig13, rollup, bitmap, views, speedups, ablation")
	sizes := flag.String("n", "10000,20000,30000", "comma-separated data-set sizes")
	queries := flag.Int("queries", 100, "random queries averaged per size")
	seed := flag.Int64("seed", 1, "workload seed")
	verify := flag.Bool("verify", false, "cross-check all systems' answers on every query")
	csv := flag.Bool("csv", false, "emit CSV")
	skipAblation := flag.Bool("skip-ablation", false, "omit the ablation table from -exp all")
	metrics := flag.Bool("metrics", false, "run the query workload at the smallest size and dump DC-tree metrics in Prometheus text format")
	workersSweep := flag.Bool("workers-sweep", false, "sweep parallel query worker counts at the smallest size and print per-worker-count throughput JSON")
	sweepWorkers := flag.String("sweep-workers", "1,2,4,8", "comma-separated worker counts for -workers-sweep")
	coldLatency := flag.Duration("cold-read-latency", 100*time.Microsecond, "per-node-fault read latency charged by the cold variant of -workers-sweep")
	walBench := flag.Bool("wal", false, "benchmark durable-insert throughput: WAL group commit vs fsync per insert, JSON output")
	walN := flag.Int("wal-n", 5000, "records inserted per variant of -wal")
	walWorkers := flag.Int("wal-workers", 8, "concurrent inserters in the group-commit variants of -wal")
	walInterval := flag.Duration("wal-interval", 2*time.Millisecond, "tuned commit interval for the tuned variants of -wal (the first group variant uses the default)")
	walSyncDelay := flag.Duration("wal-sync-delay", 2*time.Millisecond, "modeled log-device latency for the -wal modeled-disk variants (added to every fsync)")
	ckptBench := flag.Bool("checkpoint", false, "benchmark insert tail latency under periodic checkpoints: synchronous flush vs fuzzy checkpoint, JSON output")
	ckptN := flag.Int("checkpoint-n", 20000, "records inserted per variant of -checkpoint")
	ckptEvery := flag.Duration("checkpoint-every", 25*time.Millisecond, "checkpoint cadence for -checkpoint")
	snapScan := flag.Bool("snapshot-scan", false, "benchmark insert tail latency during long concurrent scans: locked live scans vs MVCC snapshot scans, JSON output")
	snapN := flag.Int("snapshot-n", 40000, "records inserted per variant of -snapshot-scan (half pre-loaded before the clock starts)")
	mmapBench := flag.Bool("mmap", false, "benchmark the cold read path: heap decode vs zero-copy flat views over the memory-mapped store file, JSON output")
	mmapN := flag.Int("mmap-n", 30000, "records indexed by -mmap")
	mmapQueries := flag.Int("mmap-queries", 200, "cold queries per variant of -mmap")
	replBench := flag.Bool("replica", false, "benchmark log-shipping replication: primary overhead, follower lag, drain and promotion, JSON output")
	replN := flag.Int("replica-n", 20000, "records inserted per run of -replica")
	replWorkers := flag.Int("replica-workers", 4, "concurrent inserters on the primary for -replica")
	replSync := flag.Bool("sync", false, "with -replica, add a synchronous-replication run (SyncReplication=1: every insert held for a follower acknowledgment) and report its overhead")
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.QueriesPerPoint = *queries
	opt.Seed = *seed
	opt.Verify = *verify
	opt.SkipAblation = *skipAblation

	var ns []int
	for _, part := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "dcbench: bad size %q\n", part)
			os.Exit(2)
		}
		ns = append(ns, n)
	}
	opt.Sizes = ns

	if *metrics {
		if err := bench.MetricsDump(opt, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *walBench {
		res, err := bench.WALBench(opt, *walN, *walWorkers, *walInterval, *walSyncDelay, "")
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	if *ckptBench {
		res, err := bench.CheckpointBench(opt, *ckptN, *ckptEvery, "")
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	if *mmapBench {
		res, err := bench.MmapBench(opt, *mmapN, *mmapQueries)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	if *replBench {
		res, err := bench.ReplBench(opt, *replN, *replWorkers, "", *replSync)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	if *snapScan {
		res, err := bench.MVCCBench(opt, *snapN)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	if *workersSweep {
		var workers []int
		for _, part := range strings.Split(*sweepWorkers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || w <= 0 {
				fmt.Fprintf(os.Stderr, "dcbench: bad worker count %q\n", part)
				os.Exit(2)
			}
			workers = append(workers, w)
		}
		res, err := bench.WorkersSweep(opt, workers, *coldLatency)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	type driver func(bench.Options) (*bench.Table, error)
	drivers := map[string]driver{
		"fig11a":   bench.Fig11aInsert,
		"fig11b":   bench.Fig11bInsertPerRecord,
		"fig12a":   func(o bench.Options) (*bench.Table, error) { return bench.Fig12Query(o, 0.01, "a") },
		"fig12b":   func(o bench.Options) (*bench.Table, error) { return bench.Fig12Query(o, 0.05, "b") },
		"fig12c":   func(o bench.Options) (*bench.Table, error) { return bench.Fig12Query(o, 0.25, "c") },
		"fig12d":   bench.Fig12dSeqScan,
		"fig13":    bench.Fig13NodeSizes,
		"rollup":   bench.Rollup,
		"bitmap":   bench.Bitmap,
		"views":    bench.Views,
		"speedups": bench.Speedups,
		"ablation": bench.Ablation,
	}

	var tables []*bench.Table
	if *exp == "all" {
		ts, err := bench.All(opt)
		if err != nil {
			fatal(err)
		}
		tables = ts
	} else {
		d, ok := drivers[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		t, err := d(opt)
		if err != nil {
			fatal(err)
		}
		tables = []*bench.Table{t}
	}

	for i, t := range tables {
		if *csv {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.String())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dcbench: %v\n", err)
	os.Exit(1)
}
