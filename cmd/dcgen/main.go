// Command dcgen emits the paper's TPC-D-like evaluation workload as CSV
// (plus the matching schema JSON), so the full pipeline can be driven
// through dctool:
//
//	dcgen -n 50000 -out data.csv -schema schema.json
//	dctool build -schema schema.json -csv data.csv -index tpcd.dc
//	dctool query -index tpcd.dc -where 'Customer.Region=EUROPE' -op SUM
//
// The generator is deterministic for a given -seed and scales its
// dimension tables with -n the way TPC-D's scale factor does.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/tpcd"
)

func main() {
	n := flag.Int("n", 10000, "number of fact records")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "tpcd.csv", "output CSV path")
	schemaOut := flag.String("schema", "", "also write the matching dctool schema JSON here")
	flag.Parse()

	if err := run(*n, *seed, *out, *schemaOut); err != nil {
		fmt.Fprintf(os.Stderr, "dcgen: %v\n", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, out, schemaOut string) error {
	if n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	gen, err := tpcd.New(seed, tpcd.ScaleFor(n))
	if err != nil {
		return err
	}
	schema := gen.Schema()

	if schemaOut != "" {
		if err := writeSchema(schema, schemaOut); err != nil {
			return err
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	w := csv.NewWriter(bw)

	// Header: Dim.Level columns (top-down per dimension), then measures.
	var header []string
	for d := 0; d < schema.Dims(); d++ {
		h, err := schema.Dim(d)
		if err != nil {
			return err
		}
		for level := h.TopLevel(); level >= 0; level-- {
			name, err := h.LevelName(level)
			if err != nil {
				return err
			}
			header = append(header, h.Name()+"."+name)
		}
	}
	for j := 0; j < schema.Measures(); j++ {
		name, err := schema.MeasureName(j)
		if err != nil {
			return err
		}
		header = append(header, name)
	}
	if err := w.Write(header); err != nil {
		return err
	}

	row := make([]string, 0, len(header))
	for i := 0; i < n; i++ {
		rec := gen.Record()
		row = row[:0]
		for d := 0; d < schema.Dims(); d++ {
			h, _ := schema.Dim(d)
			for level := h.TopLevel(); level >= 0; level-- {
				anc, err := h.AncestorAt(rec.Coords[d], level)
				if err != nil {
					return err
				}
				name, err := h.ValueName(anc)
				if err != nil {
					return err
				}
				row = append(row, name)
			}
		}
		for _, m := range rec.Measures {
			row = append(row, strconv.FormatFloat(m, 'f', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", n, out)
	return nil
}

// writeSchema emits the dctool schema JSON for the generator's cube.
func writeSchema(schema *cube.Schema, path string) error {
	type dimSpec struct {
		Name   string   `json:"name"`
		Levels []string `json:"levels"`
	}
	var spec struct {
		Dimensions []dimSpec `json:"dimensions"`
		Measures   []string  `json:"measures"`
	}
	for d := 0; d < schema.Dims(); d++ {
		h, err := schema.Dim(d)
		if err != nil {
			return err
		}
		ds := dimSpec{Name: h.Name()}
		for level := 0; level < h.Depth(); level++ {
			name, err := h.LevelName(level)
			if err != nil {
				return err
			}
			ds.Levels = append(ds.Levels, name)
		}
		spec.Dimensions = append(spec.Dimensions, ds)
	}
	for j := 0; j < schema.Measures(); j++ {
		name, err := schema.MeasureName(j)
		if err != nil {
			return err
		}
		spec.Measures = append(spec.Measures, name)
	}
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
