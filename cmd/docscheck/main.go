// Command docscheck keeps the prose honest: it fails when the
// documentation references a command-line flag no command defines, an
// error variable no package declares, or when a Go code fence in the
// markdown is not gofmt-formatted.
//
//	go run ./cmd/docscheck
//
// Run from the repository root (CI runs it as the docs-check job). Three
// checks:
//
//  1. Every `-flag` token in inline code or non-Go code fences of the
//     operator-facing documents (README.md, OPERATIONS.md,
//     REPLICATION.md, DURABILITY.md) must be a flag some command under
//     cmd/ actually defines — so renaming or removing a flag without
//     updating the docs breaks the build, not the user.
//  2. Every `ErrXxx` identifier those documents mention (ErrFenced,
//     core.ErrCorrupt, …) must be declared somewhere in the repository's
//     Go source — retiring or renaming a sentinel error without updating
//     the failure-handling docs breaks the build too.
//  3. Every ```go fence in any root-level markdown file must survive
//     gofmt unchanged (leading 4-space indents are treated as tabs, the
//     usual markdown rendering of Go indentation).
package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// flagDocs are the documents whose flag references are validated.
var flagDocs = []string{"README.md", "OPERATIONS.md", "REPLICATION.md", "DURABILITY.md"}

// allowedTools are non-repo flags the docs may legitimately mention
// (go test / go build flags in testing instructions).
var allowedTools = map[string]bool{
	"race": true, "bench": true, "benchmem": true, "count": true,
	"run": true, "short": true, "v": true, "cover": true, "tags": true,
}

var (
	// flagDef matches flag definitions: flag.String("name", …) and
	// fs.Bool("name", …) alike.
	flagDef = regexp.MustCompile(`\.(?:(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)\(|Var\([^,]+,\s*)"([^"]+)"`)
	// flagRef matches a flag token in documentation text: a dash followed
	// by a letter, up to a value or word boundary. "-checkpoint=false"
	// and "-n 100000" both yield their flag name.
	flagRef = regexp.MustCompile(`(?:^|[\s(|])-([a-z][a-z0-9-]*)`)
	// inlineCode matches `…` spans.
	inlineCode = regexp.MustCompile("`([^`]+)`")
	// errDef matches sentinel error declarations: `var ErrGap = …` and
	// `ErrGap = errors.New(…)` inside a var block alike.
	errDef = regexp.MustCompile(`(?m)^\s*(?:var\s+)?(Err[A-Z][A-Za-z0-9]*)\s*=`)
	// errRef matches an error identifier in documentation code, with or
	// without a package qualifier (core.ErrFenced, ErrGap).
	errRef = regexp.MustCompile(`\b(?:[a-z][a-z0-9]*\.)?(Err[A-Z][A-Za-z0-9]*)\b`)
)

func main() {
	defined, err := definedFlags("cmd")
	if err != nil {
		fatal(err)
	}
	errs, err := declaredErrors(".")
	if err != nil {
		fatal(err)
	}
	var problems []string
	for _, doc := range flagDocs {
		p, err := checkFlagRefs(doc, defined)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, p...)
		p, err = checkErrRefs(doc, errs)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, p...)
	}
	docs, err := filepath.Glob("*.md")
	if err != nil {
		fatal(err)
	}
	for _, doc := range docs {
		p, err := checkGoFences(doc)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
	os.Exit(1)
}

// definedFlags collects every flag name defined by any command under
// cmdDir, by scanning the source for flag-definition calls.
func definedFlags(cmdDir string) (map[string]bool, error) {
	defined := make(map[string]bool)
	err := filepath.WalkDir(cmdDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range flagDef.FindAllStringSubmatch(string(src), -1) {
			defined[m[1]] = true
		}
		return nil
	})
	if len(defined) == 0 && err == nil {
		err = fmt.Errorf("no flag definitions found under %s — run from the repository root", cmdDir)
	}
	return defined, err
}

// declaredErrors collects every ErrXxx sentinel declared anywhere in the
// repository's Go source (tests included — docs may cite test-only
// sentinels is not a case we want, but over-collection only costs the
// check a little sharpness, never a false failure).
func declaredErrors(root string) (map[string]bool, error) {
	declared := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range errDef.FindAllStringSubmatch(string(src), -1) {
			declared[m[1]] = true
		}
		return nil
	})
	if len(declared) == 0 && err == nil {
		err = fmt.Errorf("no error declarations found under %s — run from the repository root", root)
	}
	return declared, err
}

// checkErrRefs scans doc's inline code spans and code fences for ErrXxx
// identifiers and reports any the Go source does not declare.
func checkErrRefs(doc string, declared map[string]bool) ([]string, error) {
	data, err := os.ReadFile(doc)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		var code []string
		if inFence {
			code = append(code, line)
		} else {
			for _, m := range inlineCode.FindAllStringSubmatch(line, -1) {
				code = append(code, m[1])
			}
		}
		for _, c := range code {
			for _, m := range errRef.FindAllStringSubmatch(c, -1) {
				if name := m[1]; !declared[name] {
					problems = append(problems,
						fmt.Sprintf("%s:%d: error %s is not declared anywhere in the Go source", doc, i+1, name))
				}
			}
		}
	}
	return problems, nil
}

// checkFlagRefs scans doc's inline code spans and non-Go code fences for
// flag tokens and reports any that no command defines.
func checkFlagRefs(doc string, defined map[string]bool) ([]string, error) {
	data, err := os.ReadFile(doc)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence, goFence := false, false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			if !inFence {
				lang := strings.TrimPrefix(strings.TrimSpace(line), "```")
				goFence = lang == "go"
			}
			inFence = !inFence
			continue
		}
		var code []string
		switch {
		case inFence && !goFence:
			code = append(code, line)
		case !inFence:
			for _, m := range inlineCode.FindAllStringSubmatch(line, -1) {
				code = append(code, m[1])
			}
		}
		for _, c := range code {
			for _, m := range flagRef.FindAllStringSubmatch(c, -1) {
				name := m[1]
				if !defined[name] && !allowedTools[name] {
					problems = append(problems,
						fmt.Sprintf("%s:%d: flag -%s is not defined by any command under cmd/", doc, i+1, name))
				}
			}
		}
	}
	return problems, nil
}

// checkGoFences gofmt-checks every ```go fence in doc. Snippets without a
// package clause are treated as statements (wrapped in a function);
// leading 4-space indents count as tabs.
func checkGoFences(doc string) ([]string, error) {
	data, err := os.ReadFile(doc)
	if err != nil {
		return nil, err
	}
	var problems []string
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		snippet := strings.Join(lines[start:j], "\n")
		if err := gofmtClean(snippet); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: go fence: %v", doc, start, err))
		}
		i = j
	}
	return problems, nil
}

// gofmtClean reports whether the snippet is gofmt-formatted (after
// normalizing 4-space indentation to tabs).
func gofmtClean(snippet string) error {
	norm := normalizeIndent(snippet)
	src := norm
	wrapped := !strings.Contains(norm, "package ")
	if wrapped {
		var b strings.Builder
		b.WriteString("package p\n\nfunc _() {\n")
		for _, line := range strings.Split(norm, "\n") {
			if line != "" {
				b.WriteByte('\t')
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
		b.WriteString("}\n")
		src = b.String()
	}
	formatted, err := format.Source([]byte(src))
	if err != nil {
		return fmt.Errorf("does not parse: %v", err)
	}
	if string(formatted) != src {
		return fmt.Errorf("not gofmt-formatted")
	}
	return nil
}

// normalizeIndent rewrites leading 4-space groups as tabs, line by line.
func normalizeIndent(s string) string {
	lines := strings.Split(s, "\n")
	for i, line := range lines {
		var tabs int
		for strings.HasPrefix(line, "    ") {
			line = line[4:]
			tabs++
		}
		lines[i] = strings.Repeat("\t", tabs) + line
	}
	return strings.Join(lines, "\n")
}
