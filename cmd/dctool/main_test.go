package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dctree "github.com/dcindex/dctree"
)

func TestParseWhere(t *testing.T) {
	dim, level, values, err := parseWhere("Customer.Region=EUROPE|ASIA")
	if err != nil {
		t.Fatal(err)
	}
	if dim != "Customer" || level != "Region" || len(values) != 2 || values[1] != "ASIA" {
		t.Fatalf("parsed %q %q %v", dim, level, values)
	}
	for _, bad := range []string{"CustomerRegion=EUROPE", "Customer.Region", "Customer.Region=", "=X"} {
		if _, _, _, err := parseWhere(bad); err == nil {
			t.Errorf("parseWhere(%q) accepted", bad)
		}
	}
}

func TestParseOp(t *testing.T) {
	for _, s := range []string{"SUM", "sum", "Count", "AVG", "min", "MAX"} {
		if _, err := parseOp(s); err != nil {
			t.Errorf("parseOp(%q): %v", s, err)
		}
	}
	if _, err := parseOp("MEDIAN"); err == nil {
		t.Error("parseOp(MEDIAN) accepted")
	}
}

func TestLoadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schema.json")
	spec := `{
	  "dimensions": [
	    {"name": "Customer", "levels": ["Customer", "Nation", "Region"]},
	    {"name": "Time", "levels": ["Month", "Year"]}
	  ],
	  "measures": ["Revenue", "Quantity"]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	schema, raw, err := loadSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Dims() != 2 || schema.Measures() != 2 {
		t.Fatalf("schema shape %d/%d", schema.Dims(), schema.Measures())
	}
	if len(raw.Dimensions) != 2 || raw.Dimensions[1].Name != "Time" {
		t.Fatalf("spec mismatch: %+v", raw)
	}
	if _, _, err := loadSchema(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, _, err := loadSchema(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestBuildQueryRoundtrip drives the full build → query → stats → fsck
// pipeline through the exported command helpers.
func TestBuildQueryRoundtrip(t *testing.T) {
	dir := t.TempDir()
	schemaPath := filepath.Join(dir, "schema.json")
	csvPath := filepath.Join(dir, "data.csv")
	indexPath := filepath.Join(dir, "idx.dc")
	os.WriteFile(schemaPath, []byte(`{
	  "dimensions": [
	    {"name": "Customer", "levels": ["Customer", "Nation", "Region"]},
	    {"name": "Time", "levels": ["Month", "Year"]}
	  ],
	  "measures": ["Revenue"]
	}`), 0o644)
	os.WriteFile(csvPath, []byte(
		"Customer.Region,Customer.Nation,Customer.Customer,Time.Year,Time.Month,Revenue\n"+
			"EUROPE,GERMANY,C1,1996,1996-01,100.5\n"+
			"EUROPE,FRANCE,C2,1996,1996-02,50\n"+
			"ASIA,JAPAN,C3,1997,1997-01,400\n"), 0o644)

	if err := runBuild([]string{"-schema", schemaPath, "-csv", csvPath, "-index", indexPath}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := runQuery([]string{"-index", indexPath, "-where", "Customer.Region=EUROPE", "-op", "SUM"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := runStats([]string{"-index", indexPath}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := runFsck([]string{"-index", indexPath}); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	// Export round-trips: the exported CSV rebuilds an equivalent index.
	exported := filepath.Join(dir, "export.csv")
	if err := runExport([]string{"-index", indexPath, "-out", exported}); err != nil {
		t.Fatalf("export: %v", err)
	}
	index2 := filepath.Join(dir, "idx2.dc")
	if err := runBuild([]string{"-schema", schemaPath, "-csv", exported, "-index", index2}); err != nil {
		t.Fatalf("rebuild from export: %v", err)
	}
	if err := runQuery([]string{"-index", index2, "-where", "Customer.Region=EUROPE", "-op", "SUM"}); err != nil {
		t.Fatalf("query on rebuilt index: %v", err)
	}
	if err := runExport([]string{"-index", filepath.Join(dir, "missing.dc")}); err == nil {
		t.Fatal("export of missing index accepted")
	}

	// Error paths.
	if err := runBuild([]string{"-schema", schemaPath, "-csv", filepath.Join(dir, "nope.csv"), "-index", indexPath}); err == nil {
		t.Fatal("missing CSV accepted")
	}
	if err := runQuery([]string{"-index", indexPath, "-where", "bogus"}); err == nil {
		t.Fatal("bogus -where accepted")
	}
	if err := runQuery([]string{"-index", indexPath, "-where", "Customer.Region=ATLANTIS"}); err == nil {
		t.Fatal("unknown value accepted")
	}
	if err := runQuery([]string{"-index", filepath.Join(dir, "missing.dc")}); err == nil {
		t.Fatal("missing index accepted")
	}
}

// TestVerifyCommand drives the physical-integrity check: a freshly built
// index verifies clean, and a single flipped byte in a node extent makes
// verify fail instead of passing silently.
func TestVerifyCommand(t *testing.T) {
	dir := t.TempDir()
	schemaPath := filepath.Join(dir, "schema.json")
	csvPath := filepath.Join(dir, "data.csv")
	indexPath := filepath.Join(dir, "idx.dc")
	os.WriteFile(schemaPath, []byte(`{
	  "dimensions": [{"name": "Customer", "levels": ["Customer", "Nation", "Region"]}],
	  "measures": ["Revenue"]
	}`), 0o644)
	os.WriteFile(csvPath, []byte(
		"Customer.Region,Customer.Nation,Customer.Customer,Revenue\n"+
			"EUROPE,GERMANY,C1,100.5\n"+
			"ASIA,JAPAN,C2,400\n"), 0o644)
	if err := runBuild([]string{"-schema", schemaPath, "-csv", csvPath, "-index", indexPath}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := runVerify([]string{"-index", indexPath}); err != nil {
		t.Fatalf("verify on fresh index: %v", err)
	}

	// Flip one payload byte of the first extent (the root node: build
	// allocates node extents before the metadata and freelist blocks).
	f, err := os.OpenFile(indexPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(dctree.DefaultConfig().BlockSize) + 12 + 5
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := runVerify([]string{"-index", indexPath}); err == nil {
		t.Fatal("verify accepted a damaged index")
	}
}

// TestMetricsFlag drives query -metrics and stats -metrics and checks the
// Prometheus text dump reaches stdout.
func TestMetricsFlag(t *testing.T) {
	dir := t.TempDir()
	schemaPath := filepath.Join(dir, "schema.json")
	csvPath := filepath.Join(dir, "data.csv")
	indexPath := filepath.Join(dir, "idx.dc")
	os.WriteFile(schemaPath, []byte(`{
	  "dimensions": [{"name": "Customer", "levels": ["Customer", "Nation", "Region"]}],
	  "measures": ["Revenue"]
	}`), 0o644)
	os.WriteFile(csvPath, []byte(
		"Customer.Region,Customer.Nation,Customer.Customer,Revenue\n"+
			"EUROPE,GERMANY,C1,100.5\n"+
			"ASIA,JAPAN,C2,400\n"), 0o644)
	if err := runBuild([]string{"-schema", schemaPath, "-csv", csvPath, "-index", indexPath}); err != nil {
		t.Fatalf("build: %v", err)
	}

	capture := func(run func() error) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run()
		w.Close()
		os.Stdout = old
		out, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatalf("run: %v", runErr)
		}
		return string(out)
	}

	out := capture(func() error {
		return runQuery([]string{"-index", indexPath, "-where", "Customer.Region=EUROPE", "-metrics"})
	})
	for _, want := range []string{
		"SUM(Revenue) = 100.5",
		"# TYPE dctree_queries_total counter",
		"dctree_queries_total 1",
		`dctree_splits_total{kind="hierarchy"}`,
		"dctree_query_duration_seconds_count 1",
		"dctree_store_pool_hit_ratio ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("query -metrics output missing %q in:\n%s", want, out)
		}
	}

	out = capture(func() error {
		return runStats([]string{"-index", indexPath, "-metrics"})
	})
	for _, want := range []string{"records: 2", "dctree_records 2", "dctree_height 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats -metrics output missing %q in:\n%s", want, out)
		}
	}
}

// TestBuildRejectsBadCSV covers the CSV validation paths.
func TestBuildRejectsBadCSV(t *testing.T) {
	dir := t.TempDir()
	schemaPath := filepath.Join(dir, "schema.json")
	os.WriteFile(schemaPath, []byte(`{
	  "dimensions": [{"name": "D", "levels": ["Leaf", "Top"]}],
	  "measures": ["M"]
	}`), 0o644)

	cases := map[string]string{
		"missing column": "D.Top,M\nA,1\n",
		"bad measure":    "D.Top,D.Leaf,M\nA,x,notanumber\n",
	}
	for name, csv := range cases {
		csvPath := filepath.Join(dir, name+".csv")
		os.WriteFile(csvPath, []byte(csv), 0o644)
		if err := runBuild([]string{"-schema", schemaPath, "-csv", csvPath,
			"-index", filepath.Join(dir, name+".dc")}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := runBuild([]string{"-csv", "x.csv"}); err == nil {
		t.Error("missing -schema accepted")
	}
}
