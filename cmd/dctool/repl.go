package main

// Replication verbs. These reach into internal/repl directly (dctool lives
// in the module) because followers are an operational role, not part of the
// embedding API: a replica process owns its whole directory and its
// lifecycle is drive-until-signalled, which fits a command better than a
// library handle.

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/repl"
	"github.com/dcindex/dctree/internal/storage"
)

// replicaSource builds the transport from the -from spec: an http:// or
// https:// base URL means the primary exposes `dctool ship`; anything else
// is a WAL path prefix on a shared filesystem.
func replicaSource(from, lease string, leaseTTL time.Duration) repl.Source {
	if strings.HasPrefix(from, "http://") || strings.HasPrefix(from, "https://") {
		return &repl.HTTPSource{Base: from}
	}
	return &repl.DirSource{
		Prefix:     from,
		SchemaPath: repl.DefaultSchemaPath(from),
		Lease:      lease,
		LeaseTTL:   leaseTTL,
	}
}

// runReplica starts a warm standby: it bootstraps (or resumes) a follower
// in -dir from the -from source and tails until interrupted. With
// -auto-promote, losing the source for -promote-after promotes the replica
// in place and exits; the directory then holds a read-write index that
// `dctool query -index <dir>/replica.dc -wal <dir>/wal` (or any embedding)
// can open.
func runReplica(args []string) error {
	fs := flag.NewFlagSet("replica", flag.ExitOnError)
	dir := fs.String("dir", "", "replica directory (store, mirrored log and checkpoints live here)")
	from := fs.String("from", "", "source: primary WAL path prefix, or http(s):// base URL of `dctool ship`")
	lease := fs.String("lease", "", "primary liveness lease file (filesystem transport; defaults to <from>.lease)")
	leaseTTL := fs.Duration("lease-ttl", repl.DefaultLeaseTTL, "lease staleness threshold")
	poll := fs.Duration("poll", repl.DefaultPoll, "source poll interval")
	ckptEvery := fs.Duration("checkpoint-every", 5*time.Second, "replica checkpoint cadence (bounds restart replay)")
	promoteAfter := fs.Duration("promote-after", 10*time.Second, "source downtime before the replica is promotable")
	autoPromote := fs.Bool("auto-promote", false, "promote automatically once the source has been down -promote-after")
	statusEvery := fs.Duration("status-every", 5*time.Second, "print a status line this often (0 = quiet)")
	fs.Parse(args)
	if *dir == "" || *from == "" {
		return fmt.Errorf("-dir and -from are required")
	}
	leasePath := *lease
	if leasePath == "" && !strings.HasPrefix(*from, "http") {
		leasePath = *from + ".lease"
	}

	f, err := repl.NewFollower(replicaSource(*from, leasePath, *leaseTTL), repl.FollowerOptions{
		Dir:             *dir,
		Config:          core.DefaultConfig(),
		Poll:            *poll,
		CheckpointEvery: *ckptEvery,
		PromoteAfter:    *promoteAfter,
	})
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("replica in %s tailing %s from lsn %d\n", *dir, *from, f.AppliedLSN()+1)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var status <-chan time.Time
	if *statusEvery > 0 {
		t := time.NewTicker(*statusEvery)
		defer t.Stop()
		status = t.C
	}
	check := time.NewTicker(*poll * 4)
	defer check.Stop()

	for {
		select {
		case <-sig:
			fmt.Printf("stopping at lsn %d\n", f.AppliedLSN())
			return f.Close()
		case <-status:
			m := f.Metrics()
			health := "healthy"
			if !m.Healthy {
				health = fmt.Sprintf("source down %s", m.UnhealthyFor.Round(time.Second))
			}
			fmt.Printf("applied lsn %d, lag %d records / %d bytes, %s\n",
				m.AppliedLSN, m.LagLSN, m.LagBytes, health)
		case <-check.C:
			if err := f.Err(); err != nil {
				return err
			}
			if *autoPromote && f.Promotable() {
				fmt.Printf("source down past %s; promoting\n", *promoteAfter)
				tree, err := f.Promote()
				if err != nil {
					return err
				}
				fmt.Printf("promoted: %d records, read-write at %s\n", tree.Count(), *dir)
				return tree.Close()
			}
		}
	}
}

// runPromote promotes a replica directory whose follower process is not
// running (one-shot): it replays the mirrored log through recovery,
// checkpoints, and leaves the directory read-write.
func runPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	dir := fs.String("dir", "", "replica directory to promote")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	cfg := core.DefaultConfig()
	tree, store, err := repl.PromoteDir(*dir, cfg.BlockSize, storage.WALOptions{}, 0)
	if err != nil {
		return err
	}
	defer store.Close()
	fmt.Printf("promoted: %d records (height %d), read-write at %s\n",
		tree.Count(), tree.Height(), *dir)
	if err := tree.Flush(); err != nil {
		tree.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	return tree.Close()
}

// runShip serves a primary's WAL directory to HTTP followers. It is a
// sidecar: it only reads the segment files (plus the schema blob and lease
// written next to them), so it can run beside any process that owns the
// log, or on a host that mounts it read-only.
func runShip(args []string) error {
	fs := flag.NewFlagSet("ship", flag.ExitOnError)
	walPrefix := fs.String("wal", "", "primary WAL path prefix to serve")
	addr := fs.String("addr", ":7421", "listen address")
	lease := fs.String("lease", "", "primary liveness lease file surfaced via /repl/v1/health (defaults to <wal>.lease)")
	leaseTTL := fs.Duration("lease-ttl", repl.DefaultLeaseTTL, "lease staleness threshold")
	fs.Parse(args)
	if *walPrefix == "" {
		return fmt.Errorf("-wal is required")
	}
	leasePath := *lease
	if leasePath == "" {
		leasePath = *walPrefix + ".lease"
	}
	src := &repl.DirSource{
		Prefix:     *walPrefix,
		SchemaPath: repl.DefaultSchemaPath(*walPrefix),
		Lease:      leasePath,
		LeaseTTL:   *leaseTTL,
	}
	fmt.Printf("shipping %s.*.wal on %s\n", *walPrefix, *addr)
	return http.ListenAndServe(*addr, repl.NewServer(src).Handler())
}
