// Command dctool builds, queries and checks persistent DC-tree indexes
// from CSV data.
//
// Subcommands:
//
//	dctool build -schema schema.json -csv data.csv -index out.dc
//	dctool query -index out.dc -where 'Customer.Region=EUROPE|ASIA' \
//	             -where 'Time.Year=1996' -op SUM -measure ExtendedPrice
//	dctool stats -index out.dc
//	dctool fsck  -index out.dc
//	dctool verify -index out.dc
//	dctool recover -index out.dc -wal out
//	dctool versions -index out.dc -wal out [-prune id|all]
//	dctool replica -dir standby/ -from primary/out [-auto-promote]
//	dctool promote -dir standby/
//	dctool ship -wal primary/out -addr :7421
//
// `replica` runs a warm standby: it tails a primary's write-ahead log —
// over a shared filesystem (-from is the primary's WAL path prefix) or
// over HTTP (-from is the base URL of `dctool ship`) — keeping a local
// mirror of the log and a continuously applied read-only index. `promote`
// turns a replica directory into a read-write index after the primary is
// gone; `replica -auto-promote` does the same automatically once the
// source has been unreachable for -promote-after. `ship` is the serving
// sidecar for the HTTP transport. See REPLICATION.md for the protocol and
// OPERATIONS.md for runbooks.
//
// `recover` reopens a WAL-backed index after a crash: it replays the log
// tail past the last checkpoint, verifies the result, and (unless
// -checkpoint=false) writes a fresh checkpoint that truncates the log.
//
// `versions` lists MVCC snapshot versions: the persisted latest-version
// stamp always, plus every version reconstructed from the WAL tail when
// -wal is given. -prune releases a version (or all of them), returning its
// pinned extents to the freelist, and checkpoints.
//
// `fsck` checks the logical tree invariants; `verify` checks the physical
// layer instead: it reads every extent the index references and verifies
// its stored checksum, reporting each damaged extent and exiting nonzero
// on any damage.
//
// `query` and `stats` accept -metrics to append the tree's observability
// snapshot in Prometheus text format.
//
// The schema file declares dimensions (leaf level first) and measures:
//
//	{
//	  "dimensions": [
//	    {"name": "Customer", "levels": ["Customer", "Nation", "Region"]},
//	    {"name": "Time",     "levels": ["Month", "Year"]}
//	  ],
//	  "measures": ["ExtendedPrice"]
//	}
//
// The CSV must carry one column per dimension level named "Dim.Level"
// plus one column per measure; rows become data records.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	dctree "github.com/dcindex/dctree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "fsck":
		err = runFsck(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "recover":
		err = runRecover(os.Args[2:])
	case "versions":
		err = runVersions(os.Args[2:])
	case "replica":
		err = runReplica(os.Args[2:])
	case "promote":
		err = runPromote(os.Args[2:])
	case "ship":
		err = runShip(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dctool %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dctool {build|query|stats|fsck|verify|export|recover|versions|replica|promote|ship} [flags]")
	os.Exit(2)
}

// schemaSpec is the JSON schema declaration.
type schemaSpec struct {
	Dimensions []struct {
		Name   string   `json:"name"`
		Levels []string `json:"levels"` // leaf level first
	} `json:"dimensions"`
	Measures []string `json:"measures"`
}

func loadSchema(path string) (*dctree.Schema, *schemaSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var spec schemaSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	var dims []*dctree.Hierarchy
	for _, d := range spec.Dimensions {
		h, err := dctree.NewHierarchy(d.Name, d.Levels...)
		if err != nil {
			return nil, nil, err
		}
		dims = append(dims, h)
	}
	schema, err := dctree.NewSchema(dims, spec.Measures...)
	if err != nil {
		return nil, nil, err
	}
	return schema, &spec, nil
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON file")
	csvPath := fs.String("csv", "", "input CSV file")
	indexPath := fs.String("index", "index.dc", "output index file")
	fs.Parse(args)
	if *schemaPath == "" || *csvPath == "" {
		return fmt.Errorf("-schema and -csv are required")
	}

	schema, spec, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	cfg := dctree.DefaultConfig()
	store, err := dctree.OpenFileStore(*indexPath, cfg.BlockSize, 0)
	if err != nil {
		return err
	}
	defer store.Close()
	tree, err := dctree.Open(store, dctree.WithSchema(schema), dctree.WithConfig(cfg))
	if err != nil {
		return err
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("reading CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}

	// Resolve the column index of every dimension level (top-down) and
	// measure up front.
	type dimCols struct{ topDown []int }
	var dims []dimCols
	for _, d := range spec.Dimensions {
		dc := dimCols{}
		for i := len(d.Levels) - 1; i >= 0; i-- { // top level first
			name := d.Name + "." + d.Levels[i]
			idx, ok := col[name]
			if !ok {
				return fmt.Errorf("CSV missing column %q", name)
			}
			dc.topDown = append(dc.topDown, idx)
		}
		dims = append(dims, dc)
	}
	var measureCols []int
	for _, m := range spec.Measures {
		idx, ok := col[m]
		if !ok {
			return fmt.Errorf("CSV missing measure column %q", m)
		}
		measureCols = append(measureCols, idx)
	}

	n := 0
	for {
		row, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("row %d: %w", n+2, err)
		}
		paths := make([][]string, len(dims))
		for d, dc := range dims {
			path := make([]string, len(dc.topDown))
			for i, c := range dc.topDown {
				path[i] = row[c]
			}
			paths[d] = path
		}
		measures := make([]float64, len(measureCols))
		for j, c := range measureCols {
			v, err := strconv.ParseFloat(strings.TrimSpace(row[c]), 64)
			if err != nil {
				return fmt.Errorf("row %d: measure %q: %w", n+2, row[c], err)
			}
			measures[j] = v
		}
		rec, err := schema.InternRecord(paths, measures)
		if err != nil {
			return fmt.Errorf("row %d: %w", n+2, err)
		}
		if err := tree.Insert(rec); err != nil {
			return fmt.Errorf("row %d: %w", n+2, err)
		}
		n++
	}
	if err := tree.Flush(); err != nil {
		return err
	}
	fmt.Printf("indexed %d records into %s (height %d)\n", n, *indexPath, tree.Height())
	return nil
}

// parseWhere parses 'Dim.Level=V1|V2|V3'.
func parseWhere(expr string) (dim, level string, values []string, err error) {
	eq := strings.IndexByte(expr, '=')
	if eq < 0 {
		return "", "", nil, fmt.Errorf("bad -where %q: want Dim.Level=V1|V2", expr)
	}
	lhs, rhs := expr[:eq], expr[eq+1:]
	dot := strings.IndexByte(lhs, '.')
	if dot < 0 {
		return "", "", nil, fmt.Errorf("bad -where %q: want Dim.Level=...", expr)
	}
	values = strings.Split(rhs, "|")
	if len(values) == 0 || rhs == "" {
		return "", "", nil, fmt.Errorf("bad -where %q: empty value list", expr)
	}
	return lhs[:dot], lhs[dot+1:], values, nil
}

// multiFlag collects repeated -where flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func openTree(indexPath string) (*dctree.Tree, dctree.Store, error) {
	cfg := dctree.DefaultConfig()
	store, err := dctree.OpenFileStore(indexPath, cfg.BlockSize, 0)
	if err != nil {
		return nil, nil, err
	}
	tree, err := dctree.Open(store)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return tree, store, nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	indexPath := fs.String("index", "index.dc", "index file")
	opName := fs.String("op", "SUM", "aggregation: SUM, COUNT, AVG, MIN, MAX")
	measure := fs.String("measure", "", "measure name (default: first)")
	metrics := fs.Bool("metrics", false, "dump tree metrics in Prometheus text format after the query")
	var wheres multiFlag
	fs.Var(&wheres, "where", "constraint Dim.Level=V1|V2 (repeatable)")
	fs.Parse(args)

	tree, store, err := openTree(*indexPath)
	if err != nil {
		return err
	}
	defer store.Close()
	schema := tree.Schema()

	b := dctree.NewQuery(schema)
	for _, w := range wheres {
		dim, level, values, err := parseWhere(w)
		if err != nil {
			return err
		}
		b = b.Where(dim, level, values...)
	}
	q, err := b.Build()
	if err != nil {
		return err
	}

	j := 0
	if *measure != "" {
		j, err = schema.MeasureIndex(*measure)
		if err != nil {
			return err
		}
	}
	op, err := parseOp(*opName)
	if err != nil {
		return err
	}
	res, err := tree.Execute(context.Background(),
		dctree.QueryRequest{Query: q, Measure: j, CollectStats: true})
	if err != nil {
		return err
	}
	v, st := res.Agg.Value(op), res.Stats
	name, _ := schema.MeasureName(j)
	fmt.Printf("%s(%s) = %g\n", op, name, v)
	fmt.Printf("nodes visited: %d, entries scanned: %d, entries pruned: %d, materialized hits: %d, records matched: %d\n",
		st.NodesVisited, st.EntriesScanned, st.EntriesPruned, st.MaterializedHits, st.RecordsMatched)
	if *metrics {
		fmt.Println()
		if err := tree.Metrics().WriteProm(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func parseOp(s string) (dctree.Op, error) {
	switch strings.ToUpper(s) {
	case "SUM":
		return dctree.Sum, nil
	case "COUNT":
		return dctree.Count, nil
	case "AVG":
		return dctree.Avg, nil
	case "MIN":
		return dctree.Min, nil
	case "MAX":
		return dctree.Max, nil
	}
	return 0, fmt.Errorf("unknown op %q", s)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	indexPath := fs.String("index", "index.dc", "index file")
	metrics := fs.Bool("metrics", false, "dump tree metrics in Prometheus text format")
	fs.Parse(args)

	tree, store, err := openTree(*indexPath)
	if err != nil {
		return err
	}
	defer store.Close()

	fmt.Printf("records: %d\nheight:  %d\n", tree.Count(), tree.Height())
	levels, err := tree.LevelStats()
	if err != nil {
		return err
	}
	fmt.Println("level  nodes  supernodes  avg_entries  avg_blocks")
	for _, l := range levels {
		fmt.Printf("%5d  %5d  %10d  %11.1f  %10.2f\n",
			l.Level, l.Nodes, l.Supernodes, l.AvgEntries, l.AvgBlocks)
	}
	if *metrics {
		fmt.Println()
		if err := tree.Metrics().WriteProm(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runExport dumps every indexed record back to CSV in the same column
// convention `build` consumes, so an index round-trips:
// build → export → build yields an equivalent index.
func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	indexPath := fs.String("index", "index.dc", "index file")
	outPath := fs.String("out", "", "output CSV (default stdout)")
	fs.Parse(args)

	tree, store, err := openTree(*indexPath)
	if err != nil {
		return err
	}
	defer store.Close()
	schema := tree.Schema()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := csv.NewWriter(out)

	var header []string
	for d := 0; d < schema.Dims(); d++ {
		h, err := schema.Dim(d)
		if err != nil {
			return err
		}
		for level := h.TopLevel(); level >= 0; level-- {
			name, err := h.LevelName(level)
			if err != nil {
				return err
			}
			header = append(header, h.Name()+"."+name)
		}
	}
	for j := 0; j < schema.Measures(); j++ {
		name, err := schema.MeasureName(j)
		if err != nil {
			return err
		}
		header = append(header, name)
	}
	if err := w.Write(header); err != nil {
		return err
	}

	var scanErr error
	n := 0
	err = tree.Scan(func(rec dctree.Record) bool {
		row := make([]string, 0, len(header))
		for d := 0; d < schema.Dims(); d++ {
			h, err := schema.Dim(d)
			if err != nil {
				scanErr = err
				return false
			}
			for level := h.TopLevel(); level >= 0; level-- {
				anc, err := h.AncestorAt(rec.Coords[d], level)
				if err != nil {
					scanErr = err
					return false
				}
				name, err := h.ValueName(anc)
				if err != nil {
					scanErr = err
					return false
				}
				row = append(row, name)
			}
		}
		for _, m := range rec.Measures {
			row = append(row, strconv.FormatFloat(m, 'f', -1, 64))
		}
		if err := w.Write(row); err != nil {
			scanErr = err
			return false
		}
		n++
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported %d records\n", n)
	return nil
}

// runRecover is the operator-facing crash-recovery entry point: replay the
// WAL tail into the index, validate, checkpoint.
func runRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	indexPath := fs.String("index", "index.dc", "index file")
	walPrefix := fs.String("wal", "", "write-ahead log file prefix (<prefix>.<n>.wal)")
	checkpoint := fs.Bool("checkpoint", true, "write a checkpoint after replay, truncating the log")
	fs.Parse(args)
	if *walPrefix == "" {
		return fmt.Errorf("-wal is required")
	}

	cfg := dctree.DefaultConfig()
	store, err := dctree.OpenFileStore(*indexPath, cfg.BlockSize, 0)
	if err != nil {
		return err
	}
	defer store.Close()
	tree, err := dctree.Open(store, dctree.WithWAL(*walPrefix, dctree.WALOptions{}))
	if err != nil {
		return err
	}
	m := tree.Metrics()
	fmt.Printf("replayed %d log records; index now holds %d records (height %d)\n",
		m.RecoveryReplayedRecords, tree.Count(), tree.Height())
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("recovered index failed validation: %w", err)
	}
	if *checkpoint {
		if err := tree.Flush(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Println("checkpoint written; log truncated")
	}
	return tree.Close()
}

// runVersions lists MVCC versions and optionally prunes them. Versions
// persisted by a checkpoint (meta v8) rehydrate on a plain open; pass -wal
// as well to additionally reconstruct versions whose records are still in
// the log tail. Pruning works either way: -prune releases by ID (or 'all'),
// -keep-last/-max-age apply a retention policy, and a checkpoint is written
// afterwards so the released extents land on the durable freelist.
func runVersions(args []string) error {
	fs := flag.NewFlagSet("versions", flag.ExitOnError)
	indexPath := fs.String("index", "index.dc", "index file")
	walPrefix := fs.String("wal", "", "write-ahead log file prefix; also replays the tail to reconstruct versions")
	prune := fs.String("prune", "", "release version by ID, or 'all'")
	keepLast := fs.Int("keep-last", 0, "retention: keep only the newest N versions")
	maxAge := fs.Duration("max-age", 0, "retention: release versions older than this (e.g. 72h)")
	fs.Parse(args)

	var tree *dctree.Tree
	if *walPrefix != "" {
		cfg := dctree.DefaultConfig()
		store, err := dctree.OpenFileStore(*indexPath, cfg.BlockSize, 0)
		if err != nil {
			return err
		}
		defer store.Close()
		tree, err = dctree.Open(store, dctree.WithWAL(*walPrefix, dctree.WALOptions{}))
		if err != nil {
			return err
		}
	} else {
		var store dctree.Store
		var err error
		tree, store, err = openTree(*indexPath)
		if err != nil {
			return err
		}
		defer store.Close()
	}

	latestID, latestLSN := tree.LatestVersion()
	if latestID == 0 {
		fmt.Println("no version has ever been captured")
	} else {
		fmt.Printf("latest version stamp: id=%d lsn=%d\n", latestID, latestLSN)
	}
	infos := tree.Versions()
	if len(infos) == 0 {
		fmt.Println("0 live versions")
	}
	for _, vi := range infos {
		durable := "volatile"
		if vi.Persisted {
			durable = "durable"
		}
		fmt.Printf("version %d: lsn=%d records=%d overlay-nodes=%d pinned-extents=%d %s created=%s\n",
			vi.ID, vi.LSN, vi.Records, vi.Overlay, vi.Pinned, durable,
			vi.CreatedAt.Format("2006-01-02T15:04:05Z07:00"))
	}

	pruned := 0
	if *prune != "" {
		if *prune == "all" {
			for _, vi := range infos {
				if err := tree.ReleaseVersion(vi.ID); err != nil {
					return err
				}
				pruned++
			}
		} else {
			id, err := strconv.ParseUint(*prune, 10, 64)
			if err != nil {
				return fmt.Errorf("bad -prune value %q: %w", *prune, err)
			}
			if err := tree.ReleaseVersion(id); err != nil {
				return err
			}
			pruned++
		}
	}
	if *keepLast > 0 || *maxAge > 0 {
		pruned += len(tree.PruneVersionsPolicy(dctree.VersionRetention{
			KeepLast: *keepLast, MaxAge: *maxAge,
		}))
	}
	if pruned > 0 {
		// Checkpoint so the freed extents land on the durable freelist, the
		// released versions drop out of the meta manifests, and the log
		// truncates past the released version records.
		if err := tree.Flush(); err != nil {
			return fmt.Errorf("checkpoint after prune: %w", err)
		}
		fmt.Printf("pruned %d version(s); checkpoint written\n", pruned)
	}
	if *walPrefix != "" {
		return tree.Close()
	}
	return nil
}

func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	indexPath := fs.String("index", "index.dc", "index file")
	fs.Parse(args)

	tree, store, err := openTree(*indexPath)
	if err != nil {
		return err
	}
	defer store.Close()
	if err := tree.Validate(); err != nil {
		return err
	}
	for d := 0; d < tree.Schema().Dims(); d++ {
		h, err := tree.Schema().Dim(d)
		if err != nil {
			return err
		}
		if err := h.Validate(); err != nil {
			return err
		}
	}
	fmt.Printf("%s: OK (%d records, height %d)\n", *indexPath, tree.Count(), tree.Height())
	return nil
}

// runVerify is the physical-integrity check: opening the store already
// verifies the header, freelist and metadata checksums; the extent scan
// then covers every page the translation table references.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	indexPath := fs.String("index", "index.dc", "index file")
	useMmap := fs.Bool("mmap", false, "verify extents through the store's memory-mapped views (the bytes queries read zero-copy)")
	fs.Parse(args)

	tree, store, err := openTree(*indexPath)
	if err != nil {
		return err
	}
	defer store.Close()
	rep := tree.VerifyExtentsOpts(dctree.VerifyOpts{Mmap: *useMmap})
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "node %d: extent %d (%d blocks): %v\n",
			e.NodeID, e.Page, e.Blocks, e.Err)
	}
	if !rep.OK() {
		return fmt.Errorf("%d of %d extents damaged", len(rep.Errors), rep.Extents)
	}
	fmt.Printf("%s: OK (%d extents scanned, %d checksummed, layout v2=%d v3=%d",
		*indexPath, rep.Extents, rep.Checksummed, rep.LayoutV2, rep.LayoutV3)
	if *useMmap {
		fmt.Printf(", %d mapped", rep.Mapped)
	}
	fmt.Println(")")
	return nil
}
