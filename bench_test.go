// Benchmarks regenerating every figure of the DC-tree paper's evaluation
// (§5) as testing.B benchmarks. Each figure also has a table-producing
// driver in internal/bench, runnable via cmd/dcbench; the benchmarks here
// measure the same quantities in benchstat-friendly form.
//
//	go test -bench=. -benchmem .
//
// Fixture sizes are laptop-friendly; the paper's 100k–300k sweep runs via
// `go run ./cmd/dcbench -n 100000,200000,300000`.
package dctree_test

import (
	"sync"
	"testing"

	"github.com/dcindex/dctree/internal/bitmap"
	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/seqscan"
	"github.com/dcindex/dctree/internal/storage"
	"github.com/dcindex/dctree/internal/tpcd"
	"github.com/dcindex/dctree/internal/xtree"
)

const benchRecords = 20000

// fixture lazily builds the three systems over one TPC-D data set, shared
// by all query benchmarks.
type fixture struct {
	once sync.Once
	err  error

	gen    *tpcd.Gen
	recs   []cube.Record
	points []xtree.Point
	dc     *core.Tree
	xt     *xtree.Tree
	scan   *seqscan.Store

	queries map[float64][]tpcd.Query
}

var fx fixture

func (f *fixture) build(b *testing.B) {
	f.once.Do(func() {
		gen, err := tpcd.New(1, tpcd.DefaultScale())
		if err != nil {
			f.err = err
			return
		}
		f.gen = gen
		f.recs = gen.Records(benchRecords)

		cfg := core.DefaultConfig()
		dc, err := core.New(storage.NewMemStore(cfg.BlockSize), gen.Schema(), cfg)
		if err != nil {
			f.err = err
			return
		}
		xt, err := xtree.New(gen.XDims(), xtree.DefaultConfig())
		if err != nil {
			f.err = err
			return
		}
		scan := seqscan.New(gen.Schema())
		f.points = make([]xtree.Point, len(f.recs))
		for i, r := range f.recs {
			p, err := gen.XPoint(r)
			if err != nil {
				f.err = err
				return
			}
			f.points[i] = p
			if err := dc.Insert(r); err != nil {
				f.err = err
				return
			}
			if err := xt.Insert(p, r.Measures[0]); err != nil {
				f.err = err
				return
			}
			if err := scan.Insert(r); err != nil {
				f.err = err
				return
			}
		}
		f.dc, f.xt, f.scan = dc, xt, scan

		f.queries = make(map[float64][]tpcd.Query)
		for _, sel := range []float64{0.01, 0.05, 0.25} {
			qg := gen.Queries(int64(sel * 10000))
			qs := make([]tpcd.Query, 64)
			for i := range qs {
				qs[i], err = qg.Query(sel)
				if err != nil {
					f.err = err
					return
				}
			}
			f.queries[sel] = qs
		}
	})
	if f.err != nil {
		b.Fatal(f.err)
	}
}

// BenchmarkFig11aInsertDCTree measures the DC-tree's single-record insert
// (the dominant series of Fig. 11(a); the X-tree counterpart is below).
func BenchmarkFig11aInsertDCTree(b *testing.B) {
	gen, err := tpcd.New(2, tpcd.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	dc, err := core.New(storage.NewMemStore(cfg.BlockSize), gen.Schema(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Records(benchRecords)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dc.Insert(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11aInsertXTree is the X-tree series of Fig. 11(a).
func BenchmarkFig11aInsertXTree(b *testing.B) {
	gen, err := tpcd.New(2, tpcd.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	xt, err := xtree.New(gen.XDims(), xtree.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Records(benchRecords)
	points := make([]xtree.Point, len(recs))
	for i, r := range recs {
		points[i], err = gen.XPoint(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := xt.Insert(points[i%len(points)], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11bInsertPerRecord is Fig. 11(b): the per-record insert time
// of the DC-tree at a steady tree size (flat in the data-set size). It
// builds its own pre-warmed tree so the shared query fixture stays
// untouched by the b.N inserts.
func BenchmarkFig11bInsertPerRecord(b *testing.B) {
	fx.build(b)
	cfg := core.DefaultConfig()
	dc, err := core.New(storage.NewMemStore(cfg.BlockSize), fx.gen.Schema(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range fx.recs {
		if err := dc.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dc.Insert(fx.recs[i%len(fx.recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQueries(b *testing.B, sel float64, system string) {
	fx.build(b)
	qs := fx.queries[sel]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		switch system {
		case "dc":
			if _, err := fx.dc.RangeAgg(q.MDS, 0); err != nil {
				b.Fatal(err)
			}
		case "xtree":
			if _, _, err := fx.xt.RangeQuery(q.Rect, q.Filter); err != nil {
				b.Fatal(err)
			}
		case "seqscan":
			if _, err := fx.scan.RangeAgg(q.MDS, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Fig. 12(a): selectivity 1 %, DC-tree vs X-tree.
func BenchmarkFig12aQuerySel1DCTree(b *testing.B) { benchQueries(b, 0.01, "dc") }
func BenchmarkFig12aQuerySel1XTree(b *testing.B)  { benchQueries(b, 0.01, "xtree") }

// Fig. 12(b): selectivity 5 % (the paper's sweet spot for the DC-tree).
func BenchmarkFig12bQuerySel5DCTree(b *testing.B) { benchQueries(b, 0.05, "dc") }
func BenchmarkFig12bQuerySel5XTree(b *testing.B)  { benchQueries(b, 0.05, "xtree") }

// Fig. 12(c): selectivity 25 % (the DC-tree's worst case, still ~4.5x).
func BenchmarkFig12cQuerySel25DCTree(b *testing.B) { benchQueries(b, 0.25, "dc") }
func BenchmarkFig12cQuerySel25XTree(b *testing.B)  { benchQueries(b, 0.25, "xtree") }

// Fig. 12(d): selectivity 25 %, DC-tree vs sequential search (≥12.5x).
func BenchmarkFig12dQuerySel25SeqScan(b *testing.B) { benchQueries(b, 0.25, "seqscan") }

// BenchmarkFig13NodeSizes is Fig. 13: it reports the average node sizes of
// the two highest levels below the root as custom metrics instead of
// wall-clock shape.
func BenchmarkFig13NodeSizes(b *testing.B) {
	fx.build(b)
	var l1, l2, supers float64
	for i := 0; i < b.N; i++ {
		levels, err := fx.dc.LevelStats()
		if err != nil {
			b.Fatal(err)
		}
		if len(levels) > 1 {
			l1 = levels[1].AvgEntries
			supers = float64(levels[1].Supernodes)
		}
		if len(levels) > 2 {
			l2 = levels[2].AvgEntries
		}
	}
	b.ReportMetric(l1, "level1-avg-entries")
	b.ReportMetric(l2, "level2-avg-entries")
	b.ReportMetric(supers, "level1-supernodes")
}

// BenchmarkRollupDCTree / XTree measure the OLAP roll-up workload (§1's
// motivating scenarios: 1-2 coarse dimensions constrained), where the
// DC-tree's materialized directory aggregates matter most.
func BenchmarkRollupDCTree(b *testing.B) { benchRollup(b, "dc") }
func BenchmarkRollupXTree(b *testing.B)  { benchRollup(b, "xtree") }

func benchRollup(b *testing.B, system string) {
	fx.build(b)
	qg := fx.gen.Queries(4242)
	queries := make([]tpcd.Query, 64)
	for i := range queries {
		var err error
		queries[i], err = qg.Rollup(1 + i%2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		switch system {
		case "dc":
			if _, err := fx.dc.RangeAgg(q.MDS, 0); err != nil {
				b.Fatal(err)
			}
		case "xtree":
			if _, _, err := fx.xt.RangeQuery(q.Rect, q.Filter); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBitmapBaseline measures the §2 bitmap join index on the
// standard 5% workload for comparison with BenchmarkFig12b*.
func BenchmarkBitmapBaseline(b *testing.B) {
	gen, err := tpcd.New(4, tpcd.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	ix := bitmap.NewIndex(gen.Schema())
	for _, r := range gen.Records(benchRecords) {
		if err := ix.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	qg := gen.Queries(77)
	queries := make([]tpcd.Query, 64)
	for i := range queries {
		queries[i], err = qg.Query(0.05)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.RangeAgg(queries[i%len(queries)].MDS, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoMaterialization quantifies the materialized-aggregate
// advantage: the same queries on a tree that must always descend to the
// data nodes.
func BenchmarkAblationNoMaterialization(b *testing.B) {
	gen, err := tpcd.New(3, tpcd.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Materialize = false
	dc, err := core.New(storage.NewMemStore(cfg.BlockSize), gen.Schema(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range gen.Records(benchRecords / 2) {
		if err := dc.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	qg := gen.Queries(99)
	queries := make([]tpcd.Query, 64)
	for i := range queries {
		queries[i], err = qg.Query(0.05)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dc.RangeAgg(queries[i%len(queries)].MDS, 0); err != nil {
			b.Fatal(err)
		}
	}
}
