package dctree_test

import (
	"math"
	"path/filepath"
	"testing"

	dctree "github.com/dcindex/dctree"
)

// salesSchema builds a small retail cube through the public API only.
func salesSchema(t testing.TB) *dctree.Schema {
	t.Helper()
	customer, err := dctree.NewHierarchy("Customer", "Customer", "Nation", "Region")
	if err != nil {
		t.Fatal(err)
	}
	product, err := dctree.NewHierarchy("Product", "Product", "Category")
	if err != nil {
		t.Fatal(err)
	}
	timeDim, err := dctree.NewHierarchy("Time", "Month", "Year")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := dctree.NewSchema([]*dctree.Hierarchy{customer, product, timeDim}, "Revenue")
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

type sale struct {
	cust    [3]string
	prod    [2]string
	month   [2]string
	revenue float64
}

var sales = []sale{
	{[3]string{"EUROPE", "GERMANY", "C1"}, [2]string{"Electronics", "TV"}, [2]string{"1996", "1996-01"}, 100},
	{[3]string{"EUROPE", "GERMANY", "C2"}, [2]string{"Electronics", "VCR"}, [2]string{"1996", "1996-02"}, 200},
	{[3]string{"EUROPE", "FRANCE", "C3"}, [2]string{"Food", "Wine"}, [2]string{"1997", "1997-03"}, 50},
	{[3]string{"ASIA", "JAPAN", "C4"}, [2]string{"Electronics", "TV"}, [2]string{"1996", "1996-06"}, 400},
	{[3]string{"AMERICA", "USA", "C5"}, [2]string{"Food", "Cheese"}, [2]string{"1997", "1997-11"}, 75},
}

func loadSales(t testing.TB, schema *dctree.Schema, tree *dctree.Tree) []dctree.Record {
	t.Helper()
	var recs []dctree.Record
	for _, s := range sales {
		rec, err := schema.InternRecord([][]string{s.cust[:], s.prod[:], s.month[:]}, []float64{s.revenue})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestPublicAPIEndToEnd(t *testing.T) {
	schema := salesSchema(t)
	tree, err := dctree.NewInMemory(schema)
	if err != nil {
		t.Fatal(err)
	}
	loadSales(t, schema, tree)

	if tree.Count() != 5 {
		t.Fatalf("Count = %d", tree.Count())
	}

	// Whole cube.
	total, err := tree.RangeQuery(dctree.QueryAll(schema), dctree.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 825 {
		t.Fatalf("total = %g", total)
	}

	// Region query via builder.
	q, err := dctree.NewQuery(schema).Where("Customer", "Region", "EUROPE").Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.RangeQuery(q, dctree.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 350 {
		t.Fatalf("EUROPE revenue = %g", got)
	}

	// Conjunction across dimensions and ops.
	q2, err := dctree.NewQuery(schema).
		Where("Customer", "Region", "EUROPE", "ASIA").
		Where("Product", "Category", "Electronics").
		Where("Time", "Year", "1996").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tree.RangeQuery(q2, dctree.Sum, 0); v != 700 {
		t.Fatalf("conjunction sum = %g", v)
	}
	if v, _ := tree.RangeQuery(q2, dctree.Count, 0); v != 3 {
		t.Fatalf("conjunction count = %g", v)
	}
	if v, _ := tree.RangeQuery(q2, dctree.Max, 0); v != 400 {
		t.Fatalf("conjunction max = %g", v)
	}
	if v, _ := tree.RangeQuery(q2, dctree.Min, 0); v != 100 {
		t.Fatalf("conjunction min = %g", v)
	}
	if v, _ := tree.RangeQuery(q2, dctree.Avg, 0); math.Abs(v-700.0/3) > 1e-9 {
		t.Fatalf("conjunction avg = %g", v)
	}

	// Leaf-level query.
	q3, err := dctree.NewQuery(schema).Where("Customer", "Customer", "C4").Build()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tree.RangeQuery(q3, dctree.Sum, 0); v != 400 {
		t.Fatalf("C4 revenue = %g", v)
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	schema := salesSchema(t)
	tree, _ := dctree.NewInMemory(schema)
	loadSales(t, schema, tree)

	cases := map[string]*dctree.QueryBuilder{
		"unknown dim":       dctree.NewQuery(schema).Where("Nope", "Region", "EUROPE"),
		"unknown level":     dctree.NewQuery(schema).Where("Customer", "Continent", "EUROPE"),
		"unknown value":     dctree.NewQuery(schema).Where("Customer", "Region", "ATLANTIS"),
		"empty values":      dctree.NewQuery(schema).Where("Customer", "Region"),
		"double constraint": dctree.NewQuery(schema).Where("Customer", "Region", "EUROPE").Where("Customer", "Nation", "GERMANY"),
		"empty ids":         dctree.NewQuery(schema).WhereIDs("Customer"),
	}
	for name, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded", name)
		}
	}

	// WhereIDs round trip.
	q, err := dctree.NewQuery(schema).Where("Customer", "Nation", "GERMANY").Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := q[0].IDs
	q2, err := dctree.NewQuery(schema).WhereIDs("Customer", ids...).Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tree.RangeQuery(q, dctree.Sum, 0)
	b, _ := tree.RangeQuery(q2, dctree.Sum, 0)
	if a != b || a != 300 {
		t.Fatalf("WhereIDs disagrees: %g vs %g", a, b)
	}
}

func TestPublicDeleteAndDynamism(t *testing.T) {
	schema := salesSchema(t)
	tree, _ := dctree.NewInMemory(schema)
	recs := loadSales(t, schema, tree)

	if err := tree.Delete(recs[0]); err != nil {
		t.Fatal(err)
	}
	total, _ := tree.RangeQuery(dctree.QueryAll(schema), dctree.Sum, 0)
	if total != 725 {
		t.Fatalf("total after delete = %g", total)
	}
	// New values register dynamically mid-life (Fig. 2's new Samsung TV).
	rec, err := schema.InternRecord([][]string{
		{"EUROPE", "NETHERLANDS", "C9"},
		{"Electronics", "Samsung TV 1"},
		{"1998", "1998-05"},
	}, []float64{999})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(rec); err != nil {
		t.Fatal(err)
	}
	q, _ := dctree.NewQuery(schema).Where("Customer", "Nation", "NETHERLANDS").Build()
	if v, _ := tree.RangeQuery(q, dctree.Sum, 0); v != 999 {
		t.Fatalf("new nation revenue = %g", v)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiMeasureAggregation(t *testing.T) {
	customer, _ := dctree.NewHierarchy("Customer", "Customer", "Region")
	schema, err := dctree.NewSchema([]*dctree.Hierarchy{customer}, "Revenue", "Units")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := dctree.NewInMemory(schema)
	data := []struct {
		region, cust string
		revenue      float64
		units        float64
	}{
		{"EUROPE", "C1", 100, 2},
		{"EUROPE", "C2", 250, 5},
		{"ASIA", "C3", 70, 1},
	}
	for _, d := range data {
		rec, err := schema.InternRecord([][]string{{d.region, d.cust}}, []float64{d.revenue, d.units})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	q, err := dctree.NewQuery(schema).Where("Customer", "Region", "EUROPE").Build()
	if err != nil {
		t.Fatal(err)
	}
	aggs, st, err := tree.RangeAggAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("aggs = %d measures", len(aggs))
	}
	if aggs[0].Sum != 350 || aggs[1].Sum != 7 {
		t.Fatalf("sums = %g, %g", aggs[0].Sum, aggs[1].Sum)
	}
	if aggs[0].Count != 2 || aggs[1].Max != 5 || aggs[1].Min != 2 {
		t.Fatalf("aggs = %+v", aggs)
	}
	if st.NodesVisited == 0 {
		t.Fatal("stats missing")
	}
	// Consistent with per-measure queries.
	rev, _ := tree.RangeQuery(q, dctree.Sum, 0)
	units, _ := tree.RangeQuery(q, dctree.Sum, 1)
	if rev != aggs[0].Sum || units != aggs[1].Sum {
		t.Fatalf("per-measure disagreement: %g/%g vs %+v", rev, units, aggs)
	}
}

func TestPublicBulkLoad(t *testing.T) {
	schema := salesSchema(t)
	tree, err := dctree.NewInMemory(schema)
	if err != nil {
		t.Fatal(err)
	}
	var recs []dctree.Record
	for _, s := range sales {
		rec, err := schema.InternRecord([][]string{s.cust[:], s.prod[:], s.month[:]}, []float64{s.revenue})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if err := tree.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	total, err := tree.RangeQuery(dctree.QueryAll(schema), dctree.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 825 {
		t.Fatalf("bulk total = %g", total)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sales.dctree")
	cfg := dctree.DefaultConfig()
	store, err := dctree.OpenFileStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := salesSchema(t)
	tree, err := dctree.New(store, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loadSales(t, schema, tree)
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := dctree.OpenFileStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	tree2, err := dctree.Open(store2)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Count() != 5 {
		t.Fatalf("count after reopen = %d", tree2.Count())
	}
	// Queries work against the reopened dictionaries.
	q, err := dctree.NewQuery(tree2.Schema()).Where("Customer", "Region", "EUROPE").Build()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tree2.RangeQuery(q, dctree.Sum, 0); v != 350 {
		t.Fatalf("EUROPE after reopen = %g", v)
	}
}
