// Stockticker: the paper's motivating scenario for full dynamism (§1) —
// "very dynamic applications such as stock markets" where the warehouse
// cannot afford a nightly bulk-update window and must stay queryable 24/7.
//
// A writer goroutine streams trades into the DC-tree one record at a time
// while several analyst goroutines continuously run aggregate range
// queries against the live index. At the end the example verifies the
// index against a sequential re-aggregation of everything the writer
// inserted.
//
// Run with:
//
//	go run ./examples/stockticker
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	dctree "github.com/dcindex/dctree"
)

// agg answers one aggregate range query through Execute.
func agg(tree *dctree.Tree, q dctree.MDS, op dctree.Op) float64 {
	res, err := tree.Execute(context.Background(), dctree.QueryRequest{Query: q})
	if err != nil {
		log.Fatal(err)
	}
	return res.Agg.Value(op)
}

var exchanges = map[string]map[string][]string{
	"NYSE": {
		"Tech":   {"IBX", "HPQL", "ORCA"},
		"Energy": {"XOMA", "CVXX"},
	},
	"NASDAQ": {
		"Tech":    {"APLX", "MSFX", "NVDX", "GOOX"},
		"Biotech": {"GILD", "AMGN"},
	},
	"LSE": {
		"Energy":  {"BPX", "SHEL"},
		"Finance": {"HSBA", "BARC"},
	},
}

func main() {
	// Dimensions: Security (Exchange > Sector > Ticker) and Time
	// (Hour > Minute). Measure: traded value.
	security, err := dctree.NewHierarchy("Security", "Ticker", "Sector", "Exchange")
	if err != nil {
		log.Fatal(err)
	}
	timeDim, err := dctree.NewHierarchy("Time", "Minute", "Hour")
	if err != nil {
		log.Fatal(err)
	}
	schema, err := dctree.NewSchema([]*dctree.Hierarchy{security, timeDim}, "Value")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := dctree.Open(
		dctree.NewMemStore(dctree.DefaultConfig().BlockSize),
		dctree.WithSchema(schema),
	)
	if err != nil {
		log.Fatal(err)
	}

	const trades = 30000
	rng := rand.New(rand.NewSource(7))

	// Pre-intern the records on the writer's side (interning mutates the
	// dictionaries, which belongs to the single writer).
	recs := make([]dctree.Record, trades)
	var totalValue float64
	for i := range recs {
		var exch, sector, ticker string
		ne := rng.Intn(len(exchanges))
		for e := range exchanges {
			if ne == 0 {
				exch = e
				break
			}
			ne--
		}
		ns := rng.Intn(len(exchanges[exch]))
		for s := range exchanges[exch] {
			if ns == 0 {
				sector = s
				break
			}
			ns--
		}
		tickers := exchanges[exch][sector]
		ticker = tickers[rng.Intn(len(tickers))]
		hour := 9 + rng.Intn(7)
		minute := rng.Intn(60)
		value := 100 + rng.Float64()*100000
		rec, err := schema.InternRecord([][]string{
			{exch, sector, ticker},
			{fmt.Sprintf("%02dh", hour), fmt.Sprintf("%02d:%02d", hour, minute)},
		}, []float64{value})
		if err != nil {
			log.Fatal(err)
		}
		recs[i] = rec
		totalValue += value
	}

	// Analyst queries, prepared up front.
	mkQuery := func(b *dctree.QueryBuilder) dctree.MDS {
		q, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		return q
	}
	queries := []dctree.MDS{
		mkQuery(dctree.NewQuery(schema).Where("Security", "Exchange", "NASDAQ")),
		mkQuery(dctree.NewQuery(schema).Where("Security", "Sector", "Tech")),
		mkQuery(dctree.NewQuery(schema).Where("Security", "Sector", "Energy").Where("Time", "Hour", "09h", "10h")),
		dctree.QueryAll(schema),
	}

	var (
		wg         sync.WaitGroup
		inserted   atomic.Int64
		queriesRun atomic.Int64
		stop       atomic.Bool
	)

	// The writer: one trade at a time, no batching, no downtime.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, rec := range recs {
			if err := tree.Insert(rec); err != nil {
				log.Fatal(err)
			}
			inserted.Add(1)
		}
		stop.Store(true)
	}()

	// The analysts: querying the index while it is being updated.
	for a := 0; a < 4; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				q := queries[(i+a)%len(queries)]
				agg(tree, q, dctree.Sum)
				queriesRun.Add(1)
			}
		}(a)
	}

	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("streamed %d trades in %v (%.0f trades/s)\n",
		inserted.Load(), elapsed.Round(time.Millisecond),
		float64(inserted.Load())/elapsed.Seconds())
	fmt.Printf("answered %d live aggregate queries concurrently (%.0f queries/s)\n",
		queriesRun.Load(), float64(queriesRun.Load())/elapsed.Seconds())

	// Verify the final state against ground truth.
	got := agg(tree, dctree.QueryAll(schema), dctree.Sum)
	fmt.Printf("\nfinal SUM(Value) = %.2f (ground truth %.2f)\n", got, totalValue)
	for _, name := range []string{"NYSE", "NASDAQ", "LSE"} {
		q := mkQuery(dctree.NewQuery(schema).Where("Security", "Exchange", name))
		res, err := tree.Execute(context.Background(), dctree.QueryRequest{Query: q})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %14.2f across %6.0f trades\n",
			name, res.Agg.Value(dctree.Sum), res.Agg.Value(dctree.Count))
	}
}
