// Quickstart: build a tiny data cube, index it with a DC-tree, and answer
// range queries at several levels of the concept hierarchies.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	dctree "github.com/dcindex/dctree"
)

// sum runs a range query through the unified Execute entry point and
// returns the requested aggregate of measure 0.
func sum(tree *dctree.Tree, q dctree.MDS, op dctree.Op) float64 {
	res, err := tree.Execute(context.Background(), dctree.QueryRequest{Query: q})
	if err != nil {
		log.Fatal(err)
	}
	return res.Agg.Value(op)
}

func main() {
	// 1. Declare the cube: two dimensions with concept hierarchies
	//    (leaf level first) and one measure.
	customer, err := dctree.NewHierarchy("Customer", "Customer", "Nation", "Region")
	if err != nil {
		log.Fatal(err)
	}
	product, err := dctree.NewHierarchy("Product", "Product", "Category")
	if err != nil {
		log.Fatal(err)
	}
	schema, err := dctree.NewSchema([]*dctree.Hierarchy{customer, product}, "Revenue")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Create the index (in-memory store; see examples/retail for a
	//    file-backed one).
	tree, err := dctree.Open(
		dctree.NewMemStore(dctree.DefaultConfig().BlockSize),
		dctree.WithSchema(schema),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Insert data records. Every insert keeps all directory MDSs and
	//    materialized aggregates up to date — there is no bulk-load phase
	//    and no nightly update window.
	type sale struct {
		region, nation, customer string
		category, product        string
		revenue                  float64
	}
	for _, s := range []sale{
		{"EUROPE", "GERMANY", "Customer#1", "Electronics", "TV-1000", 1299},
		{"EUROPE", "GERMANY", "Customer#2", "Electronics", "VCR-77", 349},
		{"EUROPE", "FRANCE", "Customer#3", "Food", "Wine-Brut", 59},
		{"ASIA", "JAPAN", "Customer#4", "Electronics", "TV-1000", 1399},
		{"AMERICA", "USA", "Customer#5", "Food", "Cheese-Az", 25},
		{"AMERICA", "USA", "Customer#6", "Electronics", "HiFi-X", 899},
	} {
		rec, err := schema.InternRecord(
			[][]string{
				{s.region, s.nation, s.customer},
				{s.category, s.product},
			},
			[]float64{s.revenue},
		)
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.Insert(rec); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Range queries: a contiguous range per dimension at any level of
	//    its concept hierarchy, with any aggregation operator. Execute is
	//    the single entry point; the result carries the full aggregate, so
	//    one query answers Sum, Avg, Min and Max at once.
	fmt.Printf("total revenue:                 %8.2f\n",
		sum(tree, dctree.QueryAll(schema), dctree.Sum))

	europe, err := dctree.NewQuery(schema).
		Where("Customer", "Region", "EUROPE").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue in EUROPE:             %8.2f\n", sum(tree, europe, dctree.Sum))

	electronicsEU, err := dctree.NewQuery(schema).
		Where("Customer", "Region", "EUROPE", "ASIA").
		Where("Product", "Category", "Electronics").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := tree.Execute(context.Background(), dctree.QueryRequest{Query: electronicsEU})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("electronics in EUROPE+ASIA:    %8.2f\n", res.Agg.Value(dctree.Sum))
	fmt.Printf("  average sale:                %8.2f\n", res.Agg.Value(dctree.Avg))
	fmt.Printf("  largest sale:                %8.2f\n", res.Agg.Value(dctree.Max))

	// 5. Fully dynamic: deleting a record maintains everything too.
	rec, _ := schema.InternRecord(
		[][]string{{"ASIA", "JAPAN", "Customer#4"}, {"Electronics", "TV-1000"}},
		[]float64{1399},
	)
	if err := tree.Delete(rec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting the JP sale:    %8.2f\n",
		sum(tree, electronicsEU, dctree.Sum))
}
