// Analytics: bulk-load a quarter of web-shop orders and run a multi-
// measure, multi-level report — exercising BulkLoad (the offline path) and
// Execute's AllMeasures (all measures in one descent) and Parallel (worker
// fan-out for the big scans) request options.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	dctree "github.com/dcindex/dctree"
)

var channels = map[string][]string{
	"Web":    {"Desktop", "Mobile", "Tablet"},
	"Retail": {"Flagship", "Outlet"},
}

var lines = map[string][]string{
	"Apparel":     {"Shirts", "Shoes", "Jackets"},
	"Electronics": {"Audio", "Computing"},
	"Home":        {"Kitchen", "Garden"},
}

func main() {
	channel, err := dctree.NewHierarchy("Channel", "Store", "Kind", "Channel")
	if err != nil {
		log.Fatal(err)
	}
	product, err := dctree.NewHierarchy("Product", "SKU", "Line", "Division")
	if err != nil {
		log.Fatal(err)
	}
	timeDim, err := dctree.NewHierarchy("Time", "Week", "Month")
	if err != nil {
		log.Fatal(err)
	}
	schema, err := dctree.NewSchema(
		[]*dctree.Hierarchy{channel, product, timeDim},
		"Revenue", "Units", "Discount")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := dctree.Open(
		dctree.NewMemStore(dctree.DefaultConfig().BlockSize),
		dctree.WithSchema(schema),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Generate one quarter of orders and bulk-load them (initial load of
	// the warehouse; afterwards the index stays dynamic).
	const orders = 30000
	rng := rand.New(rand.NewSource(99))
	months := []string{"April", "May", "June"}
	recs := make([]dctree.Record, 0, orders)
	for i := 0; i < orders; i++ {
		ch := pick(rng, keys(channels))
		kind := pick(rng, channels[ch])
		div := pick(rng, keys(lines))
		line := pick(rng, lines[div])
		month := months[rng.Intn(len(months))]
		units := float64(1 + rng.Intn(5))
		price := 20 + rng.Float64()*180
		discount := 0.0
		if rng.Intn(4) == 0 {
			discount = price * units * 0.1
		}
		rec, err := schema.InternRecord([][]string{
			{ch, kind, fmt.Sprintf("%s-%s-%02d", ch, kind, rng.Intn(40))},
			{div, line, fmt.Sprintf("SKU-%05d", rng.Intn(5000))},
			{month, fmt.Sprintf("%s-W%d", month, 1+rng.Intn(4))},
		}, []float64{price * units, units, discount})
		if err != nil {
			log.Fatal(err)
		}
		recs = append(recs, rec)
	}
	start := time.Now()
	if err := tree.BulkLoad(recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk-loaded %d orders in %v (height %d)\n\n",
		tree.Count(), time.Since(start).Round(time.Millisecond), tree.Height())

	// Division × month report, all three measures per cell in one descent.
	fmt.Printf("%-13s %-7s %12s %8s %10s %8s\n",
		"division", "month", "revenue", "units", "discount", "avg$")
	for _, div := range keys(lines) {
		for _, month := range months {
			q, err := dctree.NewQuery(schema).
				Where("Product", "Division", div).
				Where("Time", "Month", month).
				Build()
			if err != nil {
				log.Fatal(err)
			}
			res, err := tree.Execute(context.Background(),
				dctree.QueryRequest{Query: q, AllMeasures: true})
			if err != nil {
				log.Fatal(err)
			}
			aggs := res.AggVector
			avg := 0.0
			if aggs[0].Count > 0 {
				avg = aggs[0].Sum / float64(aggs[0].Count)
			}
			fmt.Printf("%-13s %-7s %12.2f %8.0f %10.2f %8.2f\n",
				div, month, aggs[0].Sum, aggs[1].Sum, aggs[2].Sum, avg)
		}
	}

	// A big scan-heavy question, answered in parallel: total revenue of
	// all Web orders.
	q, err := dctree.NewQuery(schema).Where("Channel", "Channel", "Web").Build()
	if err != nil {
		log.Fatal(err)
	}
	seqRes, err := tree.Execute(context.Background(), dctree.QueryRequest{Query: q})
	if err != nil {
		log.Fatal(err)
	}
	seq := seqRes.Agg.Value(dctree.Sum)
	parRes, err := tree.Execute(context.Background(),
		dctree.QueryRequest{Query: q, Parallel: runtime.GOMAXPROCS(0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWeb revenue: %.2f (sequential %v, parallel %v, equal: %v)\n",
		seq, seqRes.Elapsed.Round(time.Microsecond), parRes.Elapsed.Round(time.Microsecond),
		almostEqual(seq, parRes.Agg.Sum))

	// The warehouse stays dynamic after the bulk load: a late-arriving
	// order and a same-day cancellation.
	late := recs[0]
	if err := tree.Insert(late); err != nil {
		log.Fatal(err)
	}
	if err := tree.Delete(late); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-load insert+cancel kept %d orders indexed\n", tree.Count())
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func keys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6*(a+b+1)
}
