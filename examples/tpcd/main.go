// TPC-D: the paper's full evaluation workload end to end (§5) — the
// simplified TPC-D cube of Fig. 8/9 (Customer, Supplier, Part, Time with
// measure Extended Price), indexed by a DC-tree and queried with the
// paper's random range-query generator at selectivities 1 %, 5 % and 25 %.
//
// This example drives the same internal workload generator the benchmark
// harness uses; see cmd/dcbench for the figure-by-figure reproduction.
//
// Run with:
//
//	go run ./examples/tpcd [-n 20000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
	"github.com/dcindex/dctree/internal/tpcd"
)

func main() {
	n := flag.Int("n", 20000, "number of LINEITEM records")
	flag.Parse()

	gen, err := tpcd.New(1, tpcd.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	tree, err := core.New(storage.NewMemStore(cfg.BlockSize), gen.Schema(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generating and inserting %d TPC-D records...\n", *n)
	start := time.Now()
	for i := 0; i < *n; i++ {
		if err := tree.Insert(gen.Record()); err != nil {
			log.Fatal(err)
		}
	}
	insertTime := time.Since(start)
	fmt.Printf("inserted in %v (%.3f ms/record)\n\n",
		insertTime.Round(time.Millisecond),
		insertTime.Seconds()*1000/float64(*n))

	levels, err := tree.LevelStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree shape (cf. Fig. 13):")
	fmt.Println("level  nodes  supernodes  avg_entries")
	for _, l := range levels {
		fmt.Printf("%5d  %5d  %10d  %11.1f\n", l.Level, l.Nodes, l.Supernodes, l.AvgEntries)
	}

	fmt.Println("\nrandom range queries (100 per selectivity, cf. Fig. 12):")
	for _, sel := range []float64{0.01, 0.05, 0.25} {
		qg := gen.Queries(int64(sel * 1000))
		var total time.Duration
		var sum float64
		var matHits int
		for i := 0; i < 100; i++ {
			q, err := qg.Query(sel)
			if err != nil {
				log.Fatal(err)
			}
			res, err := tree.Execute(context.Background(),
				core.QueryRequest{Query: q.MDS, CollectStats: true})
			if err != nil {
				log.Fatal(err)
			}
			total += res.Elapsed
			sum += res.Agg.Value(cube.Sum)
			matHits += res.Stats.MaterializedHits
		}
		fmt.Printf("  selectivity %4.0f%%: %8.3f ms/query  (%5d materialized directory hits)\n",
			sel*100, total.Seconds()*1000/100, matHits)
	}
}
