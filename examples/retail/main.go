// Retail: a persistent sales warehouse with OLAP-style roll-up and
// drill-down over a DC-tree index.
//
// The example generates a season of synthetic point-of-sale records,
// indexes them into a file-backed DC-tree, and then answers a typical
// analyst session: total revenue, roll-up by region, drill-down into the
// strongest region by nation, and a category × quarter cross view — every
// answer a single range query against the same index. Finally the index is
// flushed, reopened from disk, and queried again.
//
// Run with:
//
//	go run ./examples/retail
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	dctree "github.com/dcindex/dctree"
)

// execSum answers one range query through the unified Execute entry point.
func execSum(tree *dctree.Tree, q dctree.MDS) float64 {
	res, err := tree.Execute(context.Background(), dctree.QueryRequest{Query: q})
	if err != nil {
		log.Fatal(err)
	}
	return res.Agg.Value(dctree.Sum)
}

var (
	regions = map[string][]string{
		"EUROPE":  {"GERMANY", "FRANCE", "UK", "ITALY"},
		"AMERICA": {"USA", "CANADA", "BRAZIL"},
		"ASIA":    {"JAPAN", "CHINA", "INDIA"},
	}
	categories = map[string][]string{
		"Electronics": {"TV", "Laptop", "Phone", "Camera"},
		"Home":        {"Sofa", "Lamp", "Desk"},
		"Food":        {"Coffee", "Wine", "Chocolate"},
	}
	quarters = map[string][]string{
		"Q1": {"Jan", "Feb", "Mar"},
		"Q2": {"Apr", "May", "Jun"},
		"Q3": {"Jul", "Aug", "Sep"},
		"Q4": {"Oct", "Nov", "Dec"},
	}
)

func main() {
	dir, err := os.MkdirTemp("", "dctree-retail")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	indexPath := filepath.Join(dir, "sales.dc")

	schema := buildSchema()
	cfg := dctree.DefaultConfig()
	store, err := dctree.OpenFileStore(indexPath, cfg.BlockSize, 0)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := dctree.Open(store, dctree.WithSchema(schema), dctree.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}

	// Load a season of sales.
	const nSales = 20000
	rng := rand.New(rand.NewSource(2024))
	regionNames := keys(regions)
	categoryNames := keys(categories)
	quarterNames := keys(quarters)
	for i := 0; i < nSales; i++ {
		region := regionNames[rng.Intn(len(regionNames))]
		nation := regions[region][rng.Intn(len(regions[region]))]
		category := categoryNames[rng.Intn(len(categoryNames))]
		product := categories[category][rng.Intn(len(categories[category]))]
		quarter := quarterNames[rng.Intn(len(quarterNames))]
		month := quarters[quarter][rng.Intn(3)]
		rec, err := schema.InternRecord([][]string{
			{region, nation, fmt.Sprintf("Store#%03d", rng.Intn(200))},
			{category, fmt.Sprintf("%s-%d", product, rng.Intn(40))},
			{quarter, month},
		}, []float64{10 + rng.Float64()*990})
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.Insert(rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d sales (tree height %d)\n\n", tree.Count(), tree.Height())

	sum := func(b *dctree.QueryBuilder) float64 {
		q, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		return execSum(tree, q)
	}

	// Roll-up: revenue by region.
	total := execSum(tree, dctree.QueryAll(schema))
	fmt.Printf("total revenue: %12.2f\n\nby region:\n", total)
	bestRegion, bestRevenue := "", 0.0
	for _, region := range regionNames {
		v := sum(dctree.NewQuery(schema).Where("Store", "Region", region))
		fmt.Printf("  %-8s %12.2f\n", region, v)
		if v > bestRevenue {
			bestRegion, bestRevenue = region, v
		}
	}

	// Drill-down into the strongest region.
	fmt.Printf("\ndrill-down into %s:\n", bestRegion)
	for _, nation := range regions[bestRegion] {
		v := sum(dctree.NewQuery(schema).Where("Store", "Nation", nation))
		fmt.Printf("  %-8s %12.2f\n", nation, v)
	}

	// Cross view: category × quarter.
	fmt.Printf("\n%-12s", "")
	for _, q := range quarterNames {
		fmt.Printf("%12s", q)
	}
	fmt.Println()
	for _, cat := range categoryNames {
		fmt.Printf("%-12s", cat)
		for _, quarter := range quarterNames {
			v := sum(dctree.NewQuery(schema).
				Where("Product", "Category", cat).
				Where("Time", "Quarter", quarter))
			fmt.Printf("%12.2f", v)
		}
		fmt.Println()
	}

	// Persist, reopen, re-query: the dictionaries travel with the index.
	if err := tree.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	store2, err := dctree.OpenFileStore(indexPath, cfg.BlockSize, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	reopened, err := dctree.Open(store2)
	if err != nil {
		log.Fatal(err)
	}
	q, err := dctree.NewQuery(reopened.Schema()).Where("Store", "Region", bestRegion).Build()
	if err != nil {
		log.Fatal(err)
	}
	v := execSum(reopened, q)
	fmt.Printf("\nreopened from %s: %s revenue = %.2f (matches: %v)\n",
		filepath.Base(indexPath), bestRegion, v, v == bestRevenue)
}

func buildSchema() *dctree.Schema {
	store, err := dctree.NewHierarchy("Store", "Store", "Nation", "Region")
	if err != nil {
		log.Fatal(err)
	}
	product, err := dctree.NewHierarchy("Product", "Product", "Category")
	if err != nil {
		log.Fatal(err)
	}
	timeDim, err := dctree.NewHierarchy("Time", "Month", "Quarter")
	if err != nil {
		log.Fatal(err)
	}
	schema, err := dctree.NewSchema([]*dctree.Hierarchy{store, product, timeDim}, "Revenue")
	if err != nil {
		log.Fatal(err)
	}
	return schema
}

func keys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic order for reproducible output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
